//! Out-of-core (external-memory) bulk build.
//!
//! [`RStarTree::bulk_load`] holds the whole dataset in RAM, sorts it,
//! and packs leaves — fine at the paper's scales (tens of thousands of
//! objects), hopeless at the 10M+ scales where declustering over a disk
//! array actually pays off. This module builds the same tree while
//! never holding more than `O(run_capacity × jobs)` points in memory:
//!
//! 1. **Run formation** — points stream out of a [`PointSource`], are
//!    validated, tagged with a sort key (an STR axis coordinate mapped
//!    to its order-preserving integer image, or a space-filling-curve
//!    key) and a sequence number, and accumulate into bounded runs.
//!    Each run is sorted in RAM (`--jobs` runs sort in parallel) and
//!    spilled as fixed-size records through a caller-provided *scratch*
//!    page store.
//! 2. **K-way merge** — runs merge `merge_fanin` at a time on a
//!    `(key, seq)` min-heap; because `seq` is the record's position in
//!    the previous order, the merge reproduces a *stable* sort exactly,
//!    and multiple passes handle any run count. Consumed scratch pages
//!    are freed (and recycled) as they are read.
//! 3. **Tiling** — STR recurses per axis: the merged stream is cut at
//!    the same slab boundaries the in-memory tiler would use
//!    ([`crate::bulk`]'s exact integer ceil-root), slabs respill and
//!    recurse on the next axis, and any slab that fits in one run
//!    finishes with the in-memory tiler. Curve orders cut the single
//!    merged stream straight into leaves. Leaves are written through
//!    the same [`LevelWriter`] as the in-memory builder; directory
//!    levels (a few hundred thousand entries even at 10M objects) are
//!    built in memory.
//!
//! Because runs spill through a **separate** scratch store, the
//! destination store sees exactly the allocation/write sequence of the
//! in-memory builder — under [`PlacementMode::Trailing`] the resulting
//! tree is byte-identical to [`RStarTree::bulk_load_ordered`], spilling
//! or not. [`PlacementMode::SiblingStripe`] instead declusters each
//! prospective parent's tiles only against one another, striping
//! siblings across distinct disks.
//!
//! Scratch record format: `[key: u128][seq: u64][id: u64][coords: dim × f64]`,
//! little-endian, packed whole into scratch pages (no record straddles a
//! page). On error, not-yet-freed scratch pages are simply abandoned —
//! the scratch store is throwaway by contract.

use crate::bulk::{
    str_slab_size, str_tile, validate_packing, validate_point, LevelWriter, PlacementMode,
};
use crate::entry::{InternalEntry, LeafEntry, ObjectId};
use crate::node::Node;
use crate::tree::{RStarError, RStarTree, Result};
use crate::{Declusterer, PackingOrder, RStarConfig};
use sqda_geom::Point;
use sqda_storage::{Bytes, DiskId, PageId, PageStore};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

/// A re-iterable stream of `(point, object id)` pairs.
///
/// The builder makes multiple passes (curve orders need a bounds pass
/// before the key pass), so [`PointSource::iter`] must yield the same
/// sequence every time it is called.
pub trait PointSource {
    /// Number of points every pass yields.
    fn len(&self) -> u64;
    /// Dimensionality of the points.
    fn dim(&self) -> usize;
    /// Starts a fresh pass over the points.
    fn iter(&self) -> Box<dyn Iterator<Item = (Point, u64)> + '_>;
    /// Whether the source is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A [`PointSource`] over an in-memory slice (testing and small inputs).
pub struct SliceSource<'a> {
    points: &'a [(Point, u64)],
}

impl<'a> SliceSource<'a> {
    /// Wraps a slice of `(point, id)` pairs.
    pub fn new(points: &'a [(Point, u64)]) -> Self {
        Self { points }
    }
}

impl PointSource for SliceSource<'_> {
    fn len(&self) -> u64 {
        self.points.len() as u64
    }

    fn dim(&self) -> usize {
        self.points.first().map_or(0, |(p, _)| p.dim())
    }

    fn iter(&self) -> Box<dyn Iterator<Item = (Point, u64)> + '_> {
        Box::new(self.points.iter().map(|(p, id)| (p.clone(), *id)))
    }
}

/// A [`PointSource`] over a closure that restarts a generator stream —
/// the bridge from `sqda-datasets`' streaming generators, which never
/// materialize the dataset.
pub struct FnSource<F> {
    len: u64,
    dim: usize,
    make: F,
}

impl<F, I> FnSource<F>
where
    F: Fn() -> I,
    I: Iterator<Item = (Point, u64)> + 'static,
{
    /// Wraps `make`, which must produce the same `len`-point sequence
    /// of `dim`-dimensional points on every call.
    pub fn new(len: u64, dim: usize, make: F) -> Self {
        Self { len, dim, make }
    }
}

impl<F, I> PointSource for FnSource<F>
where
    F: Fn() -> I,
    I: Iterator<Item = (Point, u64)> + 'static,
{
    fn len(&self) -> u64 {
        self.len
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn iter(&self) -> Box<dyn Iterator<Item = (Point, u64)> + '_> {
        Box::new((self.make)())
    }
}

/// Tuning knobs for [`RStarTree::bulk_load_external`].
#[derive(Debug, Clone)]
pub struct ExternalBuildOptions {
    /// Maximum points per sort run — the unit of resident memory.
    /// Clamped up to twice the leaf capacity so every slab can bottom
    /// out in the in-memory tiler.
    pub run_capacity: usize,
    /// Maximum runs merged per pass (clamped to ≥ 2); more passes
    /// handle any run count.
    pub merge_fanin: usize,
    /// Sort-worker threads. Each holds one run, so resident memory is
    /// `O(run_capacity × jobs)`.
    pub jobs: usize,
    /// Input linearization, as for [`RStarTree::bulk_load_ordered`].
    pub order: PackingOrder,
    /// Sibling-window policy for page placement. Defaults to
    /// [`PlacementMode::SiblingStripe`]; use [`PlacementMode::Trailing`]
    /// to reproduce the in-memory builder byte for byte.
    pub placement: PlacementMode,
}

impl Default for ExternalBuildOptions {
    fn default() -> Self {
        Self {
            run_capacity: 1 << 18,
            merge_fanin: 64,
            jobs: 1,
            order: PackingOrder::Str,
            placement: PlacementMode::SiblingStripe,
        }
    }
}

/// What an external build did: how much spilled and how hard the merge
/// worked. All fields are deterministic for a fixed input and options.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExternalBuildReport {
    /// Sort runs formed across all external sorts.
    pub runs: u64,
    /// Merge passes over the data (0 when nothing spilled).
    pub merge_passes: u64,
    /// Scratch pages written in total.
    pub spilled_pages: u64,
    /// High-water mark of live scratch pages — the scratch store's
    /// actual footprint requirement.
    pub peak_scratch_pages: u64,
}

impl<S: PageStore> RStarTree<S> {
    /// Builds a tree by streaming `source` through an external-memory
    /// sort, holding at most `O(run_capacity × jobs)` points in RAM;
    /// sort runs spill through the separate `scratch` store. See the
    /// [module docs](self) for the pipeline and the equivalence
    /// guarantee with the in-memory builder.
    ///
    /// # Errors
    ///
    /// As [`RStarTree::bulk_load_ordered`], plus
    /// [`RStarError::InvalidBuild`] when the source yields a different
    /// number of points than [`PointSource::len`] promises or the
    /// scratch page size cannot hold a single record.
    pub fn bulk_load_external<T: PageStore>(
        store: Arc<S>,
        config: RStarConfig,
        declusterer: Box<dyn Declusterer>,
        source: &dyn PointSource,
        scratch: &Arc<T>,
        opts: &ExternalBuildOptions,
    ) -> Result<Self> {
        Self::bulk_load_external_stats(store, config, declusterer, source, scratch, opts)
            .map(|(tree, _)| tree)
    }

    /// [`RStarTree::bulk_load_external`], also returning the build's
    /// [`ExternalBuildReport`].
    pub fn bulk_load_external_stats<T: PageStore>(
        store: Arc<S>,
        config: RStarConfig,
        declusterer: Box<dyn Declusterer>,
        source: &dyn PointSource,
        scratch: &Arc<T>,
        opts: &ExternalBuildOptions,
    ) -> Result<(Self, ExternalBuildReport)> {
        validate_packing(opts.order, config.dim)?;
        let dim = config.dim;
        let mut tree = Self::create(store, config, declusterer)?;
        let n = source.len() as usize;
        if n == 0 {
            return Ok((tree, ExternalBuildReport::default()));
        }
        let leaf_cap = tree.config.max_leaf_entries;
        let run_cap = opts.run_capacity.max(2 * leaf_cap);
        if n <= run_cap {
            // Small inputs take the in-memory path outright: same tree,
            // no scratch traffic.
            let entries = collect_validated(source, dim, n)?;
            tree.bulk_build_from_entries(entries, opts.order, opts.placement)?;
            return Ok((tree, ExternalBuildReport::default()));
        }

        let rec_size = 32 + dim * 8;
        let per_page = scratch.page_size() / rec_size;
        if per_page == 0 {
            return Err(RStarError::InvalidBuild(format!(
                "scratch page size {} cannot hold a {rec_size}-byte record",
                scratch.page_size()
            )));
        }
        let mut ctx = BuildCtx {
            scratch,
            dim,
            rec_size,
            per_page,
            run_cap,
            fanin: opts.merge_fanin.max(2),
            jobs: opts.jobs.max(1),
            leaf_cap,
            min_leaf: tree.config.min_leaf_entries(),
            next_disk: 0,
            live_pages: 0,
            report: ExternalBuildReport::default(),
        };

        let mut writer = LevelWriter::new(&tree, opts.placement);
        let mut parents: Vec<InternalEntry> = Vec::new();
        match opts.order {
            PackingOrder::Str => {
                str_build(
                    &mut ctx,
                    &mut writer,
                    &mut parents,
                    Input::Source(source),
                    n,
                    0,
                )?;
            }
            PackingOrder::Morton | PackingOrder::Hilbert => {
                let (lo, hi) = source_bounds(source, dim, n)?;
                let key = match opts.order {
                    PackingOrder::Morton => SortKey::Morton { lo: &lo, hi: &hi },
                    PackingOrder::Hilbert => SortKey::Hilbert { lo: &lo, hi: &hi },
                    PackingOrder::Str => unreachable!(),
                };
                let sorted = external_sort(&mut ctx, Input::Source(source), n, &key)?;
                stream_leaves(&mut ctx, &mut writer, &mut parents, sorted, n)?;
            }
        }
        drop(writer);

        let report = ctx.report.clone();
        if parents.len() == 1 {
            tree.install_bulk_root(parents[0].child, 1, n as u64)?;
        } else {
            tree.finish_bulk_from_entries(parents, 1, opts.order, n as u64, opts.placement)?;
        }
        Ok((tree, report))
    }
}

/// Shared state of one external build.
struct BuildCtx<'a, T: PageStore> {
    scratch: &'a Arc<T>,
    dim: usize,
    rec_size: usize,
    per_page: usize,
    run_cap: usize,
    fanin: usize,
    jobs: usize,
    leaf_cap: usize,
    min_leaf: usize,
    next_disk: u32,
    live_pages: u64,
    report: ExternalBuildReport,
}

impl<T: PageStore> BuildCtx<'_, T> {
    fn alloc_scratch(&mut self) -> Result<PageId> {
        // Scratch pages round-robin across the scratch store's disks so
        // spill bandwidth also spreads over the array.
        let disk = DiskId(self.next_disk % self.scratch.num_disks());
        self.next_disk = self.next_disk.wrapping_add(1);
        let page = self.scratch.allocate(disk)?;
        self.report.spilled_pages += 1;
        self.live_pages += 1;
        self.report.peak_scratch_pages = self.report.peak_scratch_pages.max(self.live_pages);
        Ok(page)
    }

    fn free_scratch(&mut self, page: PageId) -> Result<()> {
        self.scratch.free(page)?;
        self.live_pages -= 1;
        Ok(())
    }
}

/// Input to one external-sort or load step: the original source (first
/// axis) or a spilled slab from the previous axis.
enum Input<'a> {
    Source(&'a dyn PointSource),
    Spill(Spill),
}

/// A spilled record stream: `n` records packed into scratch pages in
/// order.
struct Spill {
    pages: Vec<PageId>,
    n: usize,
}

/// The sort key of one pass, computed from a record's coordinates.
enum SortKey<'k> {
    /// The axis coordinate, mapped to its order-preserving `u64` image
    /// (matches `f64::total_cmp`, hence the in-memory stable sort).
    Axis(usize),
    Morton {
        lo: &'k [f64],
        hi: &'k [f64],
    },
    Hilbert {
        lo: &'k [f64],
        hi: &'k [f64],
    },
}

impl SortKey<'_> {
    fn key_of(&self, coords: &[f64]) -> u128 {
        match self {
            SortKey::Axis(a) => u128::from(f64_order_key(coords[*a])),
            SortKey::Morton { lo, hi } => crate::sfc::morton_key_slice(coords, lo, hi),
            SortKey::Hilbert { lo, hi } => {
                u128::from(crate::sfc::hilbert_key_2d_slice(coords, lo, hi))
            }
        }
    }
}

/// Maps a float to a `u64` whose unsigned order equals IEEE-754
/// `totalOrder` (what `f64::total_cmp` implements).
fn f64_order_key(x: f64) -> u64 {
    let b = x.to_bits();
    if b >> 63 == 1 {
        !b
    } else {
        b | 0x8000_0000_0000_0000
    }
}

/// One in-RAM record during streaming; `coords` is reused across reads.
#[derive(Default, Clone)]
struct Rec {
    key: u128,
    seq: u64,
    id: u64,
    coords: Vec<f64>,
}

/// A sorted-run buffer: record heads over a flat coordinate arena.
#[derive(Default)]
struct RunBuf {
    heads: Vec<Head>,
    coords: Vec<f64>,
}

#[derive(Clone, Copy)]
struct Head {
    key: u128,
    seq: u64,
    id: u64,
    idx: u32,
}

impl RunBuf {
    fn push(&mut self, key: u128, seq: u64, id: u64, coords: &[f64]) {
        let idx = self.heads.len() as u32;
        self.heads.push(Head { key, seq, id, idx });
        self.coords.extend_from_slice(coords);
    }
}

/// Packs records into scratch pages; no record straddles a page.
struct SpillWriter {
    buf: Vec<u8>,
    pages: Vec<PageId>,
    n: usize,
}

impl SpillWriter {
    fn new<T: PageStore>(ctx: &BuildCtx<'_, T>) -> Self {
        Self {
            buf: Vec::with_capacity(ctx.per_page * ctx.rec_size),
            pages: Vec::new(),
            n: 0,
        }
    }

    fn push<T: PageStore>(
        &mut self,
        ctx: &mut BuildCtx<'_, T>,
        key: u128,
        seq: u64,
        id: u64,
        coords: &[f64],
    ) -> Result<()> {
        self.buf.extend_from_slice(&key.to_le_bytes());
        self.buf.extend_from_slice(&seq.to_le_bytes());
        self.buf.extend_from_slice(&id.to_le_bytes());
        for &c in coords {
            self.buf.extend_from_slice(&c.to_bits().to_le_bytes());
        }
        self.n += 1;
        if self.buf.len() + ctx.rec_size > ctx.per_page * ctx.rec_size {
            self.flush(ctx)?;
        }
        Ok(())
    }

    fn flush<T: PageStore>(&mut self, ctx: &mut BuildCtx<'_, T>) -> Result<()> {
        if self.buf.is_empty() {
            return Ok(());
        }
        let page = ctx.alloc_scratch()?;
        ctx.scratch
            .write(page, Bytes::from(std::mem::take(&mut self.buf)))?;
        self.pages.push(page);
        Ok(())
    }

    fn finish<T: PageStore>(mut self, ctx: &mut BuildCtx<'_, T>) -> Result<Spill> {
        self.flush(ctx)?;
        Ok(Spill {
            pages: self.pages,
            n: self.n,
        })
    }
}

/// Streams a [`Spill`]'s records back, freeing each scratch page as it
/// is exhausted.
struct SpillReader {
    pages: std::vec::IntoIter<PageId>,
    buf: Bytes,
    off: usize,
    in_page: usize,
    remaining: usize,
}

impl SpillReader {
    fn new(spill: Spill) -> Self {
        Self {
            pages: spill.pages.into_iter(),
            buf: Bytes::new(),
            off: 0,
            in_page: 0,
            remaining: spill.n,
        }
    }

    /// Reads the next record into `rec`; returns `false` at the end.
    fn next<T: PageStore>(&mut self, ctx: &mut BuildCtx<'_, T>, rec: &mut Rec) -> Result<bool> {
        if self.remaining == 0 {
            return Ok(false);
        }
        if self.in_page == 0 {
            let page = self.pages.next().ok_or_else(|| {
                RStarError::InvalidBuild("spill run shorter than its record count".into())
            })?;
            self.buf = ctx.scratch.read(page)?;
            ctx.free_scratch(page)?;
            self.in_page = self.remaining.min(ctx.per_page);
            if self.buf.len() < self.in_page * ctx.rec_size {
                return Err(RStarError::InvalidBuild(
                    "truncated spill page in scratch store".into(),
                ));
            }
            self.off = 0;
        }
        let b = &self.buf[self.off..self.off + ctx.rec_size];
        rec.key = u128::from_le_bytes(b[0..16].try_into().expect("sized slice"));
        rec.seq = u64::from_le_bytes(b[16..24].try_into().expect("sized slice"));
        rec.id = u64::from_le_bytes(b[24..32].try_into().expect("sized slice"));
        rec.coords.clear();
        for d in 0..ctx.dim {
            let o = 32 + d * 8;
            rec.coords.push(f64::from_bits(u64::from_le_bytes(
                b[o..o + 8].try_into().expect("sized slice"),
            )));
        }
        self.off += ctx.rec_size;
        self.in_page -= 1;
        self.remaining -= 1;
        Ok(true)
    }
}

fn length_mismatch(expected: usize, got: usize) -> RStarError {
    RStarError::InvalidBuild(format!(
        "point source yielded {got} points but promised {expected}"
    ))
}

/// Collects and validates a whole source (the no-spill path).
fn collect_validated(source: &dyn PointSource, dim: usize, n: usize) -> Result<Vec<LeafEntry>> {
    let mut entries = Vec::with_capacity(n);
    for (p, id) in source.iter() {
        validate_point(&p, dim)?;
        entries.push(LeafEntry::new(p, ObjectId(id)));
        if entries.len() > n {
            return Err(length_mismatch(n, entries.len()));
        }
    }
    if entries.len() != n {
        return Err(length_mismatch(n, entries.len()));
    }
    Ok(entries)
}

/// The coordinate bounds of a source (validating pass for curve keys).
fn source_bounds(source: &dyn PointSource, dim: usize, n: usize) -> Result<(Vec<f64>, Vec<f64>)> {
    let mut lo = vec![f64::INFINITY; dim];
    let mut hi = vec![f64::NEG_INFINITY; dim];
    let mut count = 0usize;
    for (p, _) in source.iter() {
        validate_point(&p, dim)?;
        for d in 0..dim {
            let c = p.coord(d);
            if c < lo[d] {
                lo[d] = c;
            }
            if c > hi[d] {
                hi[d] = c;
            }
        }
        count += 1;
    }
    if count != n {
        return Err(length_mismatch(n, count));
    }
    Ok((lo, hi))
}

/// External merge sort of `input` by `(key, seq)`: bounded sorted runs,
/// then k-way merge passes. Returns a single sorted spill.
fn external_sort<T: PageStore>(
    ctx: &mut BuildCtx<'_, T>,
    input: Input<'_>,
    n: usize,
    key: &SortKey<'_>,
) -> Result<Spill> {
    // ---- Run formation ----
    let mut runs: Vec<Spill> = Vec::new();
    let mut pending: Vec<RunBuf> = Vec::new();
    let mut cur = RunBuf::default();
    let dim = ctx.dim;
    let flush_pending = |ctx: &mut BuildCtx<'_, T>,
                         pending: &mut Vec<RunBuf>,
                         runs: &mut Vec<Spill>|
     -> Result<()> {
        sort_bufs(pending, ctx.jobs);
        for buf in pending.drain(..) {
            let mut w = SpillWriter::new(ctx);
            for h in &buf.heads {
                let c = &buf.coords[h.idx as usize * dim..(h.idx as usize + 1) * dim];
                w.push(ctx, h.key, h.seq, h.id, c)?;
            }
            runs.push(w.finish(ctx)?);
            ctx.report.runs += 1;
        }
        Ok(())
    };
    match input {
        Input::Source(source) => {
            let mut seq = 0u64;
            for (p, id) in source.iter() {
                validate_point(&p, dim)?;
                cur.push(key.key_of(p.coords()), seq, id, p.coords());
                seq += 1;
                if seq as usize > n {
                    return Err(length_mismatch(n, seq as usize));
                }
                if cur.heads.len() == ctx.run_cap {
                    pending.push(std::mem::take(&mut cur));
                    if pending.len() == ctx.jobs {
                        flush_pending(ctx, &mut pending, &mut runs)?;
                    }
                }
            }
            if seq as usize != n {
                return Err(length_mismatch(n, seq as usize));
            }
        }
        Input::Spill(spill) => {
            let mut r = SpillReader::new(spill);
            let mut rec = Rec::default();
            while r.next(ctx, &mut rec)? {
                cur.push(key.key_of(&rec.coords), rec.seq, rec.id, &rec.coords);
                if cur.heads.len() == ctx.run_cap {
                    pending.push(std::mem::take(&mut cur));
                    if pending.len() == ctx.jobs {
                        flush_pending(ctx, &mut pending, &mut runs)?;
                    }
                }
            }
        }
    }
    if !cur.heads.is_empty() {
        pending.push(cur);
    }
    flush_pending(ctx, &mut pending, &mut runs)?;

    // ---- Merge passes ----
    while runs.len() > 1 {
        ctx.report.merge_passes += 1;
        let groups: Vec<Vec<Spill>> = {
            let mut gs = Vec::new();
            let mut it = runs.into_iter().peekable();
            while it.peek().is_some() {
                gs.push(it.by_ref().take(ctx.fanin).collect());
            }
            gs
        };
        let mut next = Vec::with_capacity(groups.len());
        for group in groups {
            next.push(merge_group(ctx, group)?);
        }
        runs = next;
    }
    runs.pop()
        .ok_or_else(|| RStarError::InvalidBuild("external sort of an empty stream".into()))
}

/// Sorts each pending run buffer by `(key, seq)`, `jobs` at a time.
fn sort_bufs(bufs: &mut [RunBuf], jobs: usize) {
    if jobs <= 1 || bufs.len() <= 1 {
        for b in bufs.iter_mut() {
            b.heads.sort_unstable_by_key(|h| (h.key, h.seq));
        }
    } else {
        std::thread::scope(|s| {
            for b in bufs.iter_mut() {
                s.spawn(move || b.heads.sort_unstable_by_key(|h| (h.key, h.seq)));
            }
        });
    }
}

/// Merges sorted runs on a `(key, seq)` min-heap into one sorted spill.
fn merge_group<T: PageStore>(ctx: &mut BuildCtx<'_, T>, group: Vec<Spill>) -> Result<Spill> {
    let mut readers: Vec<SpillReader> = group.into_iter().map(SpillReader::new).collect();
    let mut recs: Vec<Rec> = vec![Rec::default(); readers.len()];
    let mut heap: BinaryHeap<Reverse<(u128, u64, usize)>> =
        BinaryHeap::with_capacity(readers.len());
    for (i, r) in readers.iter_mut().enumerate() {
        if r.next(ctx, &mut recs[i])? {
            heap.push(Reverse((recs[i].key, recs[i].seq, i)));
        }
    }
    let mut w = SpillWriter::new(ctx);
    while let Some(Reverse((key, seq, i))) = heap.pop() {
        w.push(ctx, key, seq, recs[i].id, &recs[i].coords)?;
        if readers[i].next(ctx, &mut recs[i])? {
            heap.push(Reverse((recs[i].key, recs[i].seq, i)));
        }
    }
    w.finish(ctx)
}

/// Loads a (run-sized) input into leaf entries, preserving its order.
fn load_entries<T: PageStore>(
    ctx: &mut BuildCtx<'_, T>,
    input: Input<'_>,
    n: usize,
) -> Result<Vec<LeafEntry>> {
    match input {
        Input::Source(source) => collect_validated(source, ctx.dim, n),
        Input::Spill(spill) => {
            let mut r = SpillReader::new(spill);
            let mut rec = Rec::default();
            let mut out = Vec::with_capacity(n);
            while r.next(ctx, &mut rec)? {
                out.push(LeafEntry::new(
                    Point::new(rec.coords.clone()),
                    ObjectId(rec.id),
                ));
            }
            if out.len() != n {
                return Err(length_mismatch(n, out.len()));
            }
            Ok(out)
        }
    }
}

/// Emits one packed leaf and records its parent entry.
fn emit_leaf<S: PageStore>(
    writer: &mut LevelWriter<'_, S>,
    parents: &mut Vec<InternalEntry>,
    tile: &[LeafEntry],
) -> Result<()> {
    let node = Node::from_leaf_entries(tile);
    let mbr = node
        .mbr()
        .ok_or_else(|| RStarError::InvalidBuild("empty leaf tile".into()))?;
    let count = node.object_count();
    let page = writer.push(&node)?;
    parents.push(InternalEntry::new(mbr, page, count));
    Ok(())
}

/// External STR: sorts by `axis`, cuts the in-memory tiler's exact slab
/// boundaries, and recurses; slabs that fit one run finish in memory.
fn str_build<S: PageStore, T: PageStore>(
    ctx: &mut BuildCtx<'_, T>,
    writer: &mut LevelWriter<'_, S>,
    parents: &mut Vec<InternalEntry>,
    input: Input<'_>,
    n: usize,
    axis: usize,
) -> Result<()> {
    let dim = ctx.dim;
    if n <= ctx.run_cap {
        let mut items = load_entries(ctx, input, n)?;
        let tiles = str_tile(
            &mut items,
            ctx.leaf_cap,
            ctx.min_leaf,
            dim,
            axis,
            &|e: &LeafEntry| e.point.clone(),
        );
        for tile in tiles {
            emit_leaf(writer, parents, &tile)?;
        }
        return Ok(());
    }
    let sorted = external_sort(ctx, input, n, &SortKey::Axis(axis))?;
    if axis + 1 >= dim {
        return stream_leaves(ctx, writer, parents, sorted, n);
    }
    let (slab_size, _) = str_slab_size(n, ctx.leaf_cap, dim, axis);
    let slabs = split_slabs(ctx, sorted, n, slab_size)?;
    for spill in slabs {
        let len = spill.n;
        str_build(ctx, writer, parents, Input::Spill(spill), len, axis + 1)?;
    }
    Ok(())
}

/// Cuts a sorted spill at STR slab boundaries, retagging `seq` with the
/// record's position in the sorted order so the next axis's merge stays
/// stable (exactly what the in-memory stable sort preserves).
fn split_slabs<T: PageStore>(
    ctx: &mut BuildCtx<'_, T>,
    sorted: Spill,
    n: usize,
    slab_size: usize,
) -> Result<Vec<Spill>> {
    let min = ctx.min_leaf;
    let mut out = Vec::new();
    let mut r = SpillReader::new(sorted);
    let mut rec = Rec::default();
    let mut seq = 0u64;
    let mut start = 0usize;
    while start < n {
        let mut end = (start + slab_size).min(n);
        // Mirror `str_tile`'s tail guard: never strand a slab smaller
        // than the minimum fill.
        let tail = n - end;
        if tail > 0 && tail < min {
            end = n - min;
        }
        let mut w = SpillWriter::new(ctx);
        for _ in start..end {
            if !r.next(ctx, &mut rec)? {
                return Err(length_mismatch(n, seq as usize));
            }
            w.push(ctx, rec.key, seq, rec.id, &rec.coords)?;
            seq += 1;
        }
        out.push(w.finish(ctx)?);
        start = end;
    }
    Ok(out)
}

/// Cuts one fully sorted stream into consecutive leaves at
/// `chunk_balanced`'s exact boundaries (`n > leaf_cap` is guaranteed
/// here because `n > run_capacity ≥ 2 × leaf_cap`).
fn stream_leaves<S: PageStore, T: PageStore>(
    ctx: &mut BuildCtx<'_, T>,
    writer: &mut LevelWriter<'_, S>,
    parents: &mut Vec<InternalEntry>,
    sorted: Spill,
    n: usize,
) -> Result<()> {
    let cap = ctx.leaf_cap;
    let min = ctx.min_leaf;
    let groups = n.div_ceil(cap);
    let last = n - cap * (groups - 1);
    let (penult, final_) = if last < min {
        (cap - (min - last), min)
    } else {
        (cap, last)
    };
    let mut r = SpillReader::new(sorted);
    let mut rec = Rec::default();
    let mut tile: Vec<LeafEntry> = Vec::with_capacity(cap);
    for g in 0..groups {
        let size = if g + 1 == groups {
            final_
        } else if g + 2 == groups {
            penult
        } else {
            cap
        };
        tile.clear();
        for _ in 0..size {
            if !r.next(ctx, &mut rec)? {
                return Err(length_mismatch(n, g * cap));
            }
            tile.push(LeafEntry::new(
                Point::new(rec.coords.clone()),
                ObjectId(rec.id),
            ));
        }
        emit_leaf(writer, parents, &tile)?;
    }
    Ok(())
}
