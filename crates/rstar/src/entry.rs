//! Node entries.

use sqda_geom::{Point, Rect};
use sqda_storage::PageId;

/// Identifier of a data object referenced from a leaf entry.
///
/// In a full system this would point at the object's detailed description;
/// here it identifies the object in the experiment datasets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ObjectId(pub u64);

impl std::fmt::Display for ObjectId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// An entry of an internal node: an MBR, the child page it bounds, and the
/// number of data objects in the child's subtree.
///
/// The subtree count is the paper's modification to the R\*-tree
/// (Section 2.1): "in each MBR entry, there is an integer number denoting
/// the number of objects that the corresponding branch contains". Lemma 1
/// turns these counts into an upper bound on the k-NN distance before any
/// leaf has been read.
#[derive(Debug, Clone, PartialEq)]
pub struct InternalEntry {
    /// Bounding rectangle of the child subtree.
    pub mbr: Rect,
    /// Page id of the child node.
    pub child: PageId,
    /// Number of data objects in the child subtree.
    pub count: u64,
}

impl InternalEntry {
    /// Creates an internal entry.
    pub fn new(mbr: Rect, child: PageId, count: u64) -> Self {
        Self { mbr, child, count }
    }
}

/// An entry of a leaf node: a data point and its object id.
#[derive(Debug, Clone, PartialEq)]
pub struct LeafEntry {
    /// The indexed point (feature vector).
    pub point: Point,
    /// The object the point belongs to.
    pub object: ObjectId,
}

impl LeafEntry {
    /// Creates a leaf entry.
    pub fn new(point: Point, object: ObjectId) -> Self {
        Self { point, object }
    }

    /// The degenerate MBR of the point (used by split/reinsert code that
    /// treats both entry kinds uniformly).
    pub fn mbr(&self) -> Rect {
        Rect::from_point(&self.point)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_entry_mbr_is_degenerate() {
        let e = LeafEntry::new(Point::new(vec![1.0, 2.0]), ObjectId(7));
        let m = e.mbr();
        assert_eq!(m.lo(), &[1.0, 2.0]);
        assert_eq!(m.hi(), &[1.0, 2.0]);
    }

    #[test]
    fn object_id_display() {
        assert_eq!(ObjectId(3).to_string(), "obj3");
    }
}
