//! The decoded-node cache must be invisible to query semantics: answers
//! are identical with and without it, and a warm cache eliminates
//! physical reads (and decodes) for repeated queries.

use proptest::prelude::*;
use sqda_geom::Point;
use sqda_rstar::decluster::ProximityIndex;
use sqda_rstar::{RStarConfig, RStarTree};
use sqda_storage::{ArrayStore, NodeCache, PageStore};
use std::sync::Arc;

fn build(points: &[(f64, f64)]) -> RStarTree<ArrayStore> {
    let store = Arc::new(ArrayStore::new(4, 1449, 11));
    let mut tree = RStarTree::create(
        store,
        RStarConfig::new(2).with_max_entries(8),
        Box::new(ProximityIndex),
    )
    .unwrap();
    for (i, &(x, y)) in points.iter().enumerate() {
        tree.insert(Point::new(vec![x, y]), i as u64).unwrap();
    }
    tree
}

#[test]
fn warm_cache_serves_repeated_queries_without_io() {
    let points: Vec<(f64, f64)> = (0..600)
        .map(|i| ((i % 37) as f64, (i % 53) as f64))
        .collect();
    let mut tree = build(&points);
    tree.set_node_cache(Arc::new(NodeCache::new(4096)));
    tree.store().reset_stats();

    let q = Point::new(vec![18.0, 26.0]);
    let first = tree.knn(&q, 10).unwrap();
    let cold = tree.io_stats();
    assert!(cold.reads > 0, "cold query must hit the disks");
    assert_eq!(cold.cache_hits, 0);
    assert_eq!(cold.cache_misses, cold.reads);

    for _ in 0..10 {
        let again = tree.knn(&q, 10).unwrap();
        assert_eq!(again, first);
    }
    let warm = tree.io_stats();
    // Every node of the repeated queries came out of the cache: zero new
    // physical reads, zero new decodes.
    assert_eq!(warm.reads, cold.reads, "warm queries must not touch disks");
    assert_eq!(warm.cache_misses, cold.cache_misses);
    assert!(warm.cache_hits >= 10, "repeats must be served by the cache");
}

#[test]
fn writes_invalidate_cached_nodes() {
    let points: Vec<(f64, f64)> = (0..200)
        .map(|i| ((i % 23) as f64, (i % 29) as f64))
        .collect();
    let mut tree = build(&points);
    tree.set_node_cache(Arc::new(NodeCache::new(4096)));

    // Warm the cache along the path the insert is about to dirty. The
    // dataset only holds non-negative coordinates, so before the insert
    // the nearest neighbour of (-1, -1) is some pre-existing object.
    let q = Point::new(vec![-1.0, -1.0]);
    let before = tree.knn(&q, 1).unwrap();
    assert_ne!(before[0].object.0, 10_000);
    tree.insert(Point::new(vec![-1.0, -1.0]), 10_000).unwrap();
    let after = tree.knn(&q, 1).unwrap();
    // The freshly inserted point now sits exactly on the query; a stale
    // cached leaf would still answer with the old neighbour.
    assert_eq!(after[0].object.0, 10_000);
    assert_eq!(after[0].dist_sq, 0.0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// An `Arc`-cached read observes every invalidation: after an insert
    /// dirties the root path, re-reading the root yields a *new*
    /// allocation whose contents match a fresh decode of the on-disk
    /// bytes, while the previously returned `Arc` keeps the old
    /// snapshot alive unchanged (readers are never mutated under).
    #[test]
    fn invalidated_reads_return_fresh_decodes(
        pts in prop::collection::vec((-50.0..50.0f64, -50.0..50.0f64), 1..120),
        extra in prop::collection::vec((-50.0..50.0f64, -50.0..50.0f64), 1..12),
    ) {
        let mut tree = build(&pts);
        tree.set_node_cache(Arc::new(NodeCache::new(4096)));
        let mut total = pts.len() as u64;
        for (j, &(x, y)) in extra.iter().enumerate() {
            let root = tree.root_page();
            let snapshot = tree.read_node(root).unwrap();
            prop_assert_eq!(snapshot.object_count(), total);
            tree.insert(Point::new(vec![x, y]), 100_000 + j as u64).unwrap();
            total += 1;
            let root = tree.root_page();
            let fresh = tree.read_node(root).unwrap();
            // The stale Arc still holds the pre-insert state; the fresh
            // read is a different allocation with the new state...
            prop_assert_eq!(snapshot.object_count(), total - 1);
            prop_assert_eq!(fresh.object_count(), total);
            prop_assert!(!Arc::ptr_eq(&snapshot, &fresh));
            // ...and the cached node is exactly what a cold decode of
            // the page bytes produces.
            let bytes = tree.store().read(root).unwrap();
            let decoded = sqda_rstar::codec::decode_node(bytes, 2, root).unwrap();
            prop_assert_eq!(fresh.as_ref(), &decoded);
        }
    }

    /// k-NN answers are identical with and without the node cache, even
    /// with a tiny (thrashing) capacity.
    #[test]
    fn cached_knn_matches_uncached(
        pts in prop::collection::vec((-50.0..50.0f64, -50.0..50.0f64), 1..250),
        queries in prop::collection::vec((-60.0..60.0f64, -60.0..60.0f64), 1..8),
        k in 1usize..12,
        capacity in 1usize..64,
    ) {
        let plain = build(&pts);
        let mut cached = build(&pts);
        cached.set_node_cache(Arc::new(NodeCache::new(capacity)));
        for &(x, y) in &queries {
            let q = Point::new(vec![x, y]);
            let a = plain.knn(&q, k).unwrap();
            let b = cached.knn(&q, k).unwrap();
            prop_assert_eq!(a.len(), b.len());
            for (u, v) in a.iter().zip(b.iter()) {
                prop_assert_eq!(u.dist_sq, v.dist_sq);
            }
        }
    }
}
