//! Property-based tests: for arbitrary insert/delete workloads the tree
//! keeps its invariants and answers queries exactly like brute force.

use proptest::prelude::*;
use sqda_geom::Point;
use sqda_rstar::decluster::ProximityIndex;
use sqda_rstar::{RStarConfig, RStarTree};
use sqda_storage::ArrayStore;
use std::collections::HashSet;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Insert([f64; 2]),
    /// Delete the i-th (mod live count) currently live object.
    DeleteNth(usize),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (( -50.0..50.0f64), (-50.0..50.0f64)).prop_map(|(x, y)| Op::Insert([x, y])),
        1 => (0usize..1000).prop_map(Op::DeleteNth),
    ]
}

fn build(ops: &[Op], fanout: usize) -> (RStarTree<ArrayStore>, Vec<(Point, u64)>) {
    let store = Arc::new(ArrayStore::new(4, 1449, 7));
    let mut tree = RStarTree::create(
        store,
        RStarConfig::new(2).with_max_entries(fanout),
        Box::new(ProximityIndex),
    )
    .unwrap();
    let mut live: Vec<(Point, u64)> = Vec::new();
    let mut next_id = 0u64;
    for op in ops {
        match op {
            Op::Insert([x, y]) => {
                let p = Point::new(vec![*x, *y]);
                tree.insert(p.clone(), next_id).unwrap();
                live.push((p, next_id));
                next_id += 1;
            }
            Op::DeleteNth(n) => {
                if !live.is_empty() {
                    let idx = n % live.len();
                    let (p, id) = live.swap_remove(idx);
                    assert!(tree.delete(&p, id).unwrap());
                }
            }
        }
    }
    (tree, live)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Invariants hold after arbitrary workloads.
    #[test]
    fn invariants_after_workload(ops in proptest::collection::vec(op_strategy(), 0..300)) {
        let (tree, live) = build(&ops, 4);
        tree.validate().unwrap().unwrap();
        prop_assert_eq!(tree.num_objects() as usize, live.len());
    }

    /// kNN equals brute force after arbitrary workloads.
    #[test]
    fn knn_equals_brute_force(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        qx in -60.0..60.0f64,
        qy in -60.0..60.0f64,
        k in 1usize..20,
    ) {
        let (tree, live) = build(&ops, 5);
        let q = Point::new(vec![qx, qy]);
        let got = tree.knn(&q, k).unwrap();
        let mut want: Vec<f64> = live.iter().map(|(p, _)| q.dist_sq(p)).collect();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        want.truncate(k);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want.iter()) {
            prop_assert!((g.dist_sq - w).abs() < 1e-9, "got {} want {}", g.dist_sq, w);
        }
    }

    /// Range query equals brute force.
    #[test]
    fn range_equals_brute_force(
        ops in proptest::collection::vec(op_strategy(), 1..200),
        qx in -60.0..60.0f64,
        qy in -60.0..60.0f64,
        radius in 0.0..80.0f64,
    ) {
        let (tree, live) = build(&ops, 6);
        let q = Point::new(vec![qx, qy]);
        let got: HashSet<u64> = tree
            .range_query(&q, radius)
            .unwrap()
            .into_iter()
            .map(|e| e.object.0)
            .collect();
        let want: HashSet<u64> = live
            .iter()
            .filter(|(p, _)| q.dist(p) <= radius)
            .map(|(_, id)| *id)
            .collect();
        prop_assert_eq!(got, want);
    }

    /// Every inserted object is findable at distance ~0 (no lost inserts).
    #[test]
    fn no_lost_objects(ops in proptest::collection::vec(op_strategy(), 1..150)) {
        let (tree, live) = build(&ops, 4);
        for (p, id) in &live {
            let hits = tree.range_query(p, 1e-9).unwrap();
            prop_assert!(
                hits.iter().any(|e| e.object.0 == *id),
                "object {id} lost"
            );
        }
    }
}
