//! Property-based tests for the on-page node codec: every valid node
//! round-trips bit-exactly; mutated pages never decode into garbage
//! silently.

use proptest::prelude::*;
use sqda_geom::{Point, Rect};
use sqda_rstar::codec::{decode_node, encode_node};
use sqda_rstar::{InternalEntry, LeafEntry, Node, ObjectId};
use sqda_storage::PageId;

fn leaf_strategy() -> impl Strategy<Value = (Node, usize)> {
    (1usize..6).prop_flat_map(|dim| {
        proptest::collection::vec(
            (
                proptest::collection::vec(-1e6..1e6f64, dim),
                proptest::num::u64::ANY,
            ),
            0..40,
        )
        .prop_map(move |entries| {
            let entries: Vec<LeafEntry> = entries
                .into_iter()
                .map(|(coords, id)| LeafEntry::new(Point::new(coords), ObjectId(id)))
                .collect();
            (Node::from_leaf_entries(&entries), dim)
        })
    })
}

fn internal_strategy() -> impl Strategy<Value = (Node, usize)> {
    (1usize..6, 1u32..8).prop_flat_map(|(dim, level)| {
        proptest::collection::vec(
            (
                proptest::collection::vec((-1e6..1e6f64, 0.0..1e4f64), dim),
                proptest::num::u64::ANY,
                proptest::num::u64::ANY,
            ),
            1..30,
        )
        .prop_map(move |entries| {
            let entries: Vec<InternalEntry> = entries
                .into_iter()
                .map(|(corners, child, count)| {
                    let lo: Vec<f64> = corners.iter().map(|(l, _)| *l).collect();
                    let hi: Vec<f64> = corners.iter().map(|(l, e)| l + e).collect();
                    InternalEntry::new(Rect::new(lo, hi).unwrap(), PageId::from_raw(child), count)
                })
                .collect();
            (Node::from_internal_entries(level, &entries), dim)
        })
    })
}

proptest! {
    #[test]
    fn leaf_roundtrip((node, dim) in leaf_strategy()) {
        let bytes = encode_node(&node, dim);
        let back = decode_node(bytes, dim, PageId::from_raw(0)).unwrap();
        prop_assert_eq!(node, back);
    }

    #[test]
    fn internal_roundtrip((node, dim) in internal_strategy()) {
        let bytes = encode_node(&node, dim);
        let back = decode_node(bytes, dim, PageId::from_raw(0)).unwrap();
        prop_assert_eq!(node, back);
    }

    /// Truncating an encoded page at any point either fails cleanly or
    /// (for truncation inside unused capacity) never panics.
    #[test]
    fn truncation_never_panics((node, dim) in internal_strategy(), cut in 0usize..200) {
        let bytes = encode_node(&node, dim);
        let cut = cut.min(bytes.len());
        let truncated = bytes.slice(0..cut);
        let _ = decode_node(truncated, dim, PageId::from_raw(1));
    }

    /// Flipping a header byte is always detected or yields a decodable
    /// (but never panicking) result.
    #[test]
    fn header_mutation_never_panics((node, dim) in leaf_strategy(), pos in 0usize..16, val in proptest::num::u8::ANY) {
        let mut bytes = encode_node(&node, dim).to_vec();
        if pos < bytes.len() {
            bytes[pos] = val;
        }
        let _ = decode_node(bytes::Bytes::from(bytes), dim, PageId::from_raw(2));
    }
}
