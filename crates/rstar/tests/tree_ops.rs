//! End-to-end tests of the R\*-tree: insertion, queries, deletion, and
//! structural invariants, against brute-force ground truth.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqda_geom::{Point, Rect};
use sqda_rstar::decluster::{ProximityIndex, RoundRobin};
use sqda_rstar::{RStarConfig, RStarTree};
use sqda_storage::{ArrayStore, PageStore};
use std::collections::HashSet;
use std::sync::Arc;

fn new_tree(dim: usize, max_entries: Option<usize>) -> RStarTree<ArrayStore> {
    let store = Arc::new(ArrayStore::new(8, 1449, 99));
    let mut config = RStarConfig::new(dim);
    if let Some(m) = max_entries {
        config = config.with_max_entries(m);
    }
    RStarTree::create(store, config, Box::new(ProximityIndex)).unwrap()
}

fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new((0..dim).map(|_| rng.gen_range(0.0..100.0)).collect()))
        .collect()
}

fn brute_knn(points: &[Point], q: &Point, k: usize) -> Vec<(usize, f64)> {
    let mut d: Vec<(usize, f64)> = points
        .iter()
        .enumerate()
        .map(|(i, p)| (i, q.dist_sq(p)))
        .collect();
    d.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap().then(a.0.cmp(&b.0)));
    d.truncate(k);
    d
}

#[test]
fn insert_and_validate_small_fanout() {
    let mut tree = new_tree(2, Some(4));
    let points = random_points(500, 2, 1);
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    assert_eq!(tree.num_objects(), 500);
    assert!(tree.height() > 2, "fanout 4 with 500 points must be deep");
    tree.validate().unwrap().unwrap();
}

#[test]
fn insert_and_validate_realistic_fanout() {
    let mut tree = new_tree(2, None);
    let points = random_points(5000, 2, 2);
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    tree.validate().unwrap().unwrap();
    let stats = tree.stats().unwrap();
    assert_eq!(stats.num_objects, 5000);
    assert!(stats.avg_fill > 0.5, "avg fill {}", stats.avg_fill);
    // All pages accounted for across disks.
    assert_eq!(
        stats.pages_per_disk.iter().sum::<usize>() as u64,
        stats.total_nodes()
    );
}

#[test]
fn knn_matches_brute_force_2d() {
    let mut tree = new_tree(2, Some(8));
    let points = random_points(800, 2, 3);
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    let mut rng = StdRng::seed_from_u64(33);
    for _ in 0..20 {
        let q = Point::new(vec![rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)]);
        for k in [1, 5, 17] {
            let got = tree.knn(&q, k).unwrap();
            let want = brute_knn(&points, &q, k);
            assert_eq!(got.len(), k);
            for (g, (_, wd)) in got.iter().zip(want.iter()) {
                assert!(
                    (g.dist_sq - wd).abs() < 1e-9,
                    "kNN distance mismatch: {} vs {}",
                    g.dist_sq,
                    wd
                );
            }
        }
    }
}

#[test]
fn knn_matches_brute_force_high_dim() {
    let dim = 8;
    let mut tree = new_tree(dim, None);
    let points = random_points(1500, dim, 4);
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    let q = Point::splat(dim, 50.0);
    let got = tree.knn(&q, 25).unwrap();
    let want = brute_knn(&points, &q, 25);
    for (g, (_, wd)) in got.iter().zip(want.iter()) {
        assert!((g.dist_sq - wd).abs() < 1e-9);
    }
    // Results are sorted by distance.
    for w in got.windows(2) {
        assert!(w[0].dist_sq <= w[1].dist_sq);
    }
}

#[test]
fn knn_k_larger_than_population() {
    let mut tree = new_tree(2, Some(4));
    let points = random_points(10, 2, 5);
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    let got = tree.knn(&Point::splat(2, 0.0), 50).unwrap();
    assert_eq!(got.len(), 10, "k > n returns all objects");
}

#[test]
fn knn_on_empty_tree() {
    let tree = new_tree(3, None);
    assert!(tree.knn(&Point::splat(3, 0.0), 5).unwrap().is_empty());
    assert!(tree
        .range_query(&Point::splat(3, 0.0), 10.0)
        .unwrap()
        .is_empty());
}

#[test]
fn range_query_matches_brute_force() {
    let mut tree = new_tree(2, Some(8));
    let points = random_points(600, 2, 6);
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    let q = Point::new(vec![40.0, 60.0]);
    for radius in [0.5, 5.0, 20.0, 200.0] {
        let got: HashSet<u64> = tree
            .range_query(&q, radius)
            .unwrap()
            .into_iter()
            .map(|e| e.object.0)
            .collect();
        let want: HashSet<u64> = points
            .iter()
            .enumerate()
            .filter(|(_, p)| q.dist(p) <= radius)
            .map(|(i, _)| i as u64)
            .collect();
        assert_eq!(got, want, "radius {radius}");
    }
}

#[test]
fn window_query_matches_brute_force() {
    let mut tree = new_tree(2, None);
    let points = random_points(600, 2, 7);
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    let window = Rect::new(vec![20.0, 30.0], vec![50.0, 80.0]).unwrap();
    let got: HashSet<u64> = tree
        .window_query(&window)
        .unwrap()
        .into_iter()
        .map(|e| e.object.0)
        .collect();
    let want: HashSet<u64> = points
        .iter()
        .enumerate()
        .filter(|(_, p)| window.contains_point(p))
        .map(|(i, _)| i as u64)
        .collect();
    assert_eq!(got, want);
}

#[test]
fn duplicate_points_are_kept_separately() {
    let mut tree = new_tree(2, Some(4));
    let p = Point::new(vec![1.0, 1.0]);
    for i in 0..50 {
        tree.insert(p.clone(), i).unwrap();
    }
    tree.validate().unwrap().unwrap();
    let got = tree.knn(&p, 50).unwrap();
    assert_eq!(got.len(), 50);
    let ids: HashSet<u64> = got.iter().map(|n| n.object.0).collect();
    assert_eq!(ids.len(), 50);
}

#[test]
fn delete_removes_and_keeps_invariants() {
    let mut tree = new_tree(2, Some(6));
    let points = random_points(300, 2, 8);
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    // Delete every third point.
    for (i, p) in points.iter().enumerate() {
        if i % 3 == 0 {
            assert!(tree.delete(p, i as u64).unwrap(), "point {i} present");
        }
    }
    tree.validate().unwrap().unwrap();
    assert_eq!(tree.num_objects(), 200);
    // Deleted points are gone; others remain.
    for (i, p) in points.iter().enumerate() {
        let found = tree
            .range_query(p, 1e-9)
            .unwrap()
            .iter()
            .any(|e| e.object.0 == i as u64);
        assert_eq!(found, i % 3 != 0, "object {i}");
    }
    // Deleting a missing object returns false.
    assert!(!tree.delete(&points[0], 0).unwrap());
}

#[test]
fn delete_everything_then_reinsert() {
    let mut tree = new_tree(2, Some(4));
    let points = random_points(120, 2, 9);
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    for (i, p) in points.iter().enumerate() {
        assert!(tree.delete(p, i as u64).unwrap());
        tree.validate().unwrap().unwrap();
    }
    assert_eq!(tree.num_objects(), 0);
    assert_eq!(tree.height(), 1);
    // Tree is fully usable again.
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    tree.validate().unwrap().unwrap();
    assert_eq!(tree.knn(&points[0], 1).unwrap()[0].dist_sq, 0.0);
}

#[test]
fn mixed_workload_stays_valid() {
    let mut tree = new_tree(3, Some(8));
    let mut rng = StdRng::seed_from_u64(10);
    let mut live: Vec<(Point, u64)> = Vec::new();
    let mut next_id = 0u64;
    for round in 0..2000 {
        let delete = !live.is_empty() && rng.gen_bool(0.35);
        if delete {
            let idx = rng.gen_range(0..live.len());
            let (p, id) = live.swap_remove(idx);
            assert!(tree.delete(&p, id).unwrap());
        } else {
            let p = Point::new((0..3).map(|_| rng.gen_range(0.0..50.0)).collect());
            tree.insert(p.clone(), next_id).unwrap();
            live.push((p, next_id));
            next_id += 1;
        }
        if round % 400 == 399 {
            tree.validate().unwrap().unwrap();
            assert_eq!(tree.num_objects() as usize, live.len());
        }
    }
    tree.validate().unwrap().unwrap();
    // Final brute-force check on kNN.
    let q = Point::splat(3, 25.0);
    let points: Vec<Point> = live.iter().map(|(p, _)| p.clone()).collect();
    let got = tree.knn(&q, 10).unwrap();
    let want = brute_knn(&points, &q, 10);
    for (g, (_, wd)) in got.iter().zip(want.iter()) {
        assert!((g.dist_sq - wd).abs() < 1e-9);
    }
}

#[test]
fn dimension_mismatch_is_rejected() {
    let mut tree = new_tree(2, None);
    let p3 = Point::splat(3, 1.0);
    assert!(tree.insert(p3.clone(), 0).is_err());
    assert!(tree.knn(&p3, 1).is_err());
    assert!(tree.range_query(&p3, 1.0).is_err());
    assert!(tree.delete(&p3, 0).is_err());
}

#[test]
fn declustering_distributes_pages() {
    let store = Arc::new(ArrayStore::new(10, 1449, 5));
    let mut tree = RStarTree::create(
        store.clone(),
        RStarConfig::new(2).with_max_entries(8),
        Box::new(ProximityIndex),
    )
    .unwrap();
    for (i, p) in random_points(2000, 2, 11).into_iter().enumerate() {
        tree.insert(p, i as u64).unwrap();
    }
    let pages = store.pages_per_disk();
    let total: usize = pages.iter().sum();
    assert!(total > 100, "expected many pages, got {total}");
    // No disk is empty and no disk hoards more than half the pages.
    for (d, &n) in pages.iter().enumerate() {
        assert!(n > 0, "disk {d} has no pages: {pages:?}");
        assert!(n < total / 2, "disk {d} hoards pages: {pages:?}");
    }
}

#[test]
fn round_robin_build_also_valid() {
    let store = Arc::new(ArrayStore::new(4, 1449, 5));
    let mut tree = RStarTree::create(
        store,
        RStarConfig::new(2).with_max_entries(6),
        Box::new(RoundRobin::new()),
    )
    .unwrap();
    for (i, p) in random_points(700, 2, 12).into_iter().enumerate() {
        tree.insert(p, i as u64).unwrap();
    }
    tree.validate().unwrap().unwrap();
}

#[test]
fn stats_level_structure() {
    let mut tree = new_tree(2, Some(4));
    for (i, p) in random_points(200, 2, 13).into_iter().enumerate() {
        tree.insert(p, i as u64).unwrap();
    }
    let stats = tree.stats().unwrap();
    assert_eq!(stats.height as usize, stats.nodes_per_level.len());
    // Exactly one root.
    assert_eq!(stats.nodes_per_level[stats.height as usize - 1], 1);
    // Leaves outnumber every other level.
    assert!(stats.nodes_per_level[0] >= *stats.nodes_per_level.last().unwrap());
}

#[test]
fn nn_iter_streams_in_distance_order() {
    let mut tree = new_tree(2, Some(8));
    let points = random_points(600, 2, 40);
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    let q = Point::new(vec![50.0, 50.0]);
    // The stream equals full brute-force ordering, lazily.
    let want = brute_knn(&points, &q, 600);
    let mut count = 0;
    let mut prev = 0.0f64;
    for (got, (_, wd)) in tree.nn_iter(q.clone()).zip(want.iter()) {
        let got = got.unwrap();
        assert!((got.dist_sq - wd).abs() < 1e-9);
        assert!(got.dist_sq >= prev);
        prev = got.dist_sq;
        count += 1;
    }
    assert_eq!(count, 600);
    // Early termination is cheap: taking 3 reads few nodes.
    let first3: Vec<_> = tree.nn_iter(q).take(3).collect();
    assert_eq!(first3.len(), 3);
}

#[test]
#[should_panic(expected = "dimensionality mismatch")]
fn nn_iter_rejects_wrong_dimension() {
    let tree = new_tree(2, None);
    let _ = tree.nn_iter(Point::splat(3, 0.0));
}
