//! Pins the query-visible behaviour of the node hot path.
//!
//! The flat node layout, the `Arc`-shared cache and the reusable scratch
//! heap are pure representation changes: every answer, every tie-break
//! and every I/O counter must be bit-identical to the entry-based
//! layout. This test freezes a seeded 2k-object tree and asserts the
//! exact k-NN results (as an FNV-1a digest over `(object, dist_sq)`
//! pairs) and the exact [`IoStats`] a cold-cache query batch produces.
//! Any drift in traversal order, metric arithmetic or cache accounting
//! shows up here as a changed constant.

use sqda_geom::Point;
use sqda_rstar::decluster::ProximityIndex;
use sqda_rstar::{RStarConfig, RStarTree};
use sqda_storage::{ArrayStore, NodeCache, PageStore};
use std::sync::Arc;

const OBJECTS: usize = 2000;
const QUERIES: usize = 20;
const K: usize = 10;

fn build_tree() -> RStarTree<ArrayStore> {
    let store = Arc::new(ArrayStore::new(10, 1449, 1));
    let mut tree = RStarTree::create(
        store,
        RStarConfig::with_page_size(2, 1024),
        Box::new(ProximityIndex),
    )
    .unwrap();
    for i in 0..OBJECTS {
        let x = ((i * 7919) % 2003) as f64 * 0.5;
        let y = ((i * 104_729) % 1999) as f64 * 0.25;
        tree.insert(Point::new(vec![x, y]), i as u64).unwrap();
    }
    tree
}

fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0100_0000_01b3);
    }
    hash
}

#[test]
fn knn_results_and_io_stats_are_pinned() {
    let mut tree = build_tree();
    tree.set_node_cache(Arc::new(NodeCache::new(8192)));
    tree.store().reset_stats();

    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    let mut pairs = 0usize;
    let mut first5: Vec<(u64, u64)> = Vec::new();
    for i in 0..QUERIES {
        let q = Point::new(vec![
            (i * 53 % 101) as f64 * 9.0,
            (i * 31 % 97) as f64 * 4.7,
        ]);
        let neighbors = tree.knn(&q, K).unwrap();
        assert_eq!(neighbors.len(), K);
        for n in &neighbors {
            hash = fnv1a(&n.object.0.to_le_bytes(), hash);
            hash = fnv1a(&n.dist_sq.to_bits().to_le_bytes(), hash);
            if first5.len() < 5 {
                first5.push((n.object.0, n.dist_sq.to_bits()));
            }
            pairs += 1;
        }
    }

    assert_eq!(pairs, QUERIES * K);
    // First neighbours of query 0 at (0, 0): object 0 sits exactly on
    // the query point.
    assert_eq!(
        first5,
        [
            (0, 0),
            (64, 4650400372597194752),
            (279, 4656880344375492608),
            (128, 4659407571851935744),
            (494, 4661092161104642048),
        ]
    );
    assert_eq!(hash, 0x2cbe_4ec1_73df_2a5f, "k-NN answer stream drifted");

    let io = tree.io_stats();
    assert_eq!(io.reads, 43, "physical reads drifted");
    assert_eq!(io.writes, 0, "queries must not write");
    assert_eq!(io.cache_hits, 44, "cache hit accounting drifted");
    assert_eq!(io.cache_misses, 43, "cache miss accounting drifted");
    assert_eq!(
        io.cache_misses, io.reads,
        "every miss is exactly one physical read"
    );
}
