//! The R\*-tree over a persistent file-backed store: the index survives a
//! store close/reopen cycle with all invariants and answers intact.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqda_geom::Point;
use sqda_rstar::decluster::ProximityIndex;
use sqda_rstar::{RStarConfig, RStarTree};
use sqda_storage::{FileStore, PageId};
use std::path::PathBuf;
use std::sync::Arc;

fn tmpdir(name: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("sqda-rstar-persist-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn tree_survives_reopen() {
    let dir = tmpdir("reopen");
    let mut rng = StdRng::seed_from_u64(1);
    let points: Vec<Point> = (0..800)
        .map(|_| Point::new(vec![rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)]))
        .collect();

    let root: PageId;
    {
        let store = Arc::new(FileStore::create(&dir, 4, 1449, 1024, 7).unwrap());
        let mut tree = RStarTree::create(
            store.clone(),
            RStarConfig::with_page_size(2, 1024),
            Box::new(ProximityIndex),
        )
        .unwrap();
        for (i, p) in points.iter().enumerate() {
            tree.insert(p.clone(), i as u64).unwrap();
        }
        tree.validate().unwrap().unwrap();
        root = tree.root_page();
        store.sync().unwrap();
    } // store dropped: everything must now come from the files

    let store = Arc::new(FileStore::open(&dir).unwrap());
    let tree = RStarTree::attach(
        store,
        RStarConfig::with_page_size(2, 1024),
        Box::new(ProximityIndex),
        root,
    )
    .unwrap();
    assert_eq!(tree.num_objects(), 800);
    tree.validate().unwrap().unwrap();

    // Queries over the reopened tree match brute force.
    let q = Point::new(vec![50.0, 50.0]);
    let got = tree.knn(&q, 10).unwrap();
    let mut want: Vec<f64> = points.iter().map(|p| q.dist_sq(p)).collect();
    want.sort_by(|a, b| a.partial_cmp(b).unwrap());
    for (g, w) in got.iter().zip(want.iter()) {
        assert!((g.dist_sq - w).abs() < 1e-9);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn reopened_tree_accepts_mutations() {
    let dir = tmpdir("mutate");
    let root: PageId;
    {
        let store = Arc::new(FileStore::create(&dir, 2, 100, 1024, 9).unwrap());
        let mut tree = RStarTree::create(
            store.clone(),
            RStarConfig::with_page_size(2, 1024).with_max_entries(6),
            Box::new(ProximityIndex),
        )
        .unwrap();
        for i in 0..150u64 {
            tree.insert(Point::new(vec![(i % 13) as f64, (i % 7) as f64]), i)
                .unwrap();
        }
        root = tree.root_page();
        store.sync().unwrap();
    }
    let store = Arc::new(FileStore::open(&dir).unwrap());
    let mut tree = RStarTree::attach(
        store,
        RStarConfig::with_page_size(2, 1024).with_max_entries(6),
        Box::new(ProximityIndex),
        root,
    )
    .unwrap();
    // Insert and delete through the reopened handle.
    for i in 150..200u64 {
        tree.insert(Point::new(vec![i as f64, i as f64]), i)
            .unwrap();
    }
    assert!(tree.delete(&Point::new(vec![0.0, 0.0]), 0).unwrap());
    tree.validate().unwrap().unwrap();
    assert_eq!(tree.num_objects(), 199);
    std::fs::remove_dir_all(&dir).ok();
}
