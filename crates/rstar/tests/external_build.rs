//! Pins the out-of-core bulk builder against the in-memory one.
//!
//! The external builder exists to change *how* the tree is built —
//! bounded sort runs spilled through a scratch store instead of one
//! in-RAM sort — never *what* gets built. Under
//! [`PlacementMode::Trailing`] the contract is exact: same destination
//! store seed, same packing order, same points ⇒ byte-identical pages
//! on identical disks, even when the build is forced through many spill
//! runs and multiple merge passes. `SiblingStripe` placement instead
//! guarantees each prospective parent's children land on distinct disks
//! (up to the array width). A third test holds a byte-budgeted node
//! cache to its hard cap while a k-NN sweep churns it.

use sqda_geom::Point;
use sqda_rstar::decluster::ProximityIndex;
use sqda_rstar::{
    ExternalBuildOptions, Node, PackingOrder, PlacementMode, RStarConfig, RStarTree, SliceSource,
};
use sqda_storage::{ArrayStore, NodeCache, PageId, PageStore};
use std::sync::Arc;

const DISKS: u32 = 8;
const PAGE: usize = 1024;
const N: usize = 3000;

/// Deterministic, duplicate-free 2-d points with ids in insertion order.
fn points() -> Vec<(Point, u64)> {
    (0..N)
        .map(|i| {
            let x = ((i * 7919) % 4001) as f64 * 0.37;
            let y = ((i * 104_729) % 3989) as f64 * 0.61;
            (Point::new(vec![x, y]), i as u64)
        })
        .collect()
}

fn store(seed: u64) -> Arc<ArrayStore> {
    Arc::new(ArrayStore::with_page_size(DISKS, 1449, PAGE, seed))
}

/// Breadth-first page walk from the root.
fn walk(tree: &RStarTree<ArrayStore>) -> Vec<PageId> {
    let mut frontier = vec![tree.root_page()];
    let mut pages = Vec::new();
    while let Some(page) = frontier.pop() {
        pages.push(page);
        let node = tree.read_node(page).unwrap();
        if !node.is_leaf() {
            frontier.extend(node.internal_iter().map(|e| e.child));
        }
    }
    pages
}

#[test]
fn external_build_is_byte_identical_to_in_memory() {
    let pts = points();
    for order in [
        PackingOrder::Str,
        PackingOrder::Morton,
        PackingOrder::Hilbert,
    ] {
        let mem_tree = RStarTree::bulk_load_ordered(
            store(42),
            RStarConfig::with_page_size(2, PAGE),
            Box::new(ProximityIndex),
            pts.clone(),
            order,
        )
        .unwrap();

        // Tiny runs and a narrow merge fan-in force real spills and at
        // least one multi-pass merge; two jobs exercise parallel run
        // formation.
        let scratch = store(7);
        let source = SliceSource::new(&pts);
        let opts = ExternalBuildOptions {
            run_capacity: 256,
            merge_fanin: 3,
            jobs: 2,
            order,
            placement: PlacementMode::Trailing,
        };
        let (ext_tree, report) = RStarTree::bulk_load_external_stats(
            store(42),
            RStarConfig::with_page_size(2, PAGE),
            Box::new(ProximityIndex),
            &source,
            &scratch,
            &opts,
        )
        .unwrap();

        assert!(report.runs > 1, "{order:?}: build never spilled a run");
        assert!(report.spilled_pages > 0, "{order:?}: no scratch pages");
        assert!(report.merge_passes >= 1, "{order:?}: merge never ran");

        assert_eq!(mem_tree.root_page(), ext_tree.root_page(), "{order:?}");
        assert_eq!(mem_tree.root_level(), ext_tree.root_level(), "{order:?}");
        let mem_pages = walk(&mem_tree);
        let ext_pages = walk(&ext_tree);
        assert_eq!(mem_pages, ext_pages, "{order:?}: page graph differs");
        for &page in &mem_pages {
            assert_eq!(
                mem_tree.store().read(page).unwrap(),
                ext_tree.store().read(page).unwrap(),
                "{order:?}: page {page:?} bytes differ"
            );
            assert_eq!(
                mem_tree.store().placement(page).unwrap().disk,
                ext_tree.store().placement(page).unwrap().disk,
                "{order:?}: page {page:?} placed on a different disk"
            );
        }
    }
}

#[test]
fn sibling_stripe_places_parent_groups_on_distinct_disks() {
    let pts = points();
    let scratch = store(7);
    let source = SliceSource::new(&pts);
    let opts = ExternalBuildOptions {
        run_capacity: 256,
        placement: PlacementMode::SiblingStripe,
        ..ExternalBuildOptions::default()
    };
    let tree = RStarTree::bulk_load_external(
        store(42),
        RStarConfig::with_page_size(2, PAGE),
        Box::new(ProximityIndex),
        &source,
        &scratch,
        &opts,
    )
    .unwrap();

    // Sibling striping works in stride-aligned groups of the directory
    // fan-out, in write order: within each group the declusterer's
    // sibling-count tiebreak makes an unused disk always win, so the
    // first min(group, DISKS) pages of every group land on distinct
    // disks. Reconstruct write order per level (pages allocate
    // sequentially) and pin exactly that.
    let stride = tree.config().max_internal_entries;
    let mut levels: std::collections::BTreeMap<u32, Vec<PageId>> =
        std::collections::BTreeMap::new();
    for page in walk(&tree) {
        let node = tree.read_node(page).unwrap();
        levels.entry(node.level()).or_default().push(page);
    }
    let mut striped_groups = 0;
    for (level, mut pages) in levels {
        if level == tree.root_level() {
            continue;
        }
        pages.sort_unstable();
        for group in pages.chunks(stride) {
            let head = group.len().min(DISKS as usize);
            let mut disks: Vec<u32> = group[..head]
                .iter()
                .map(|&p| tree.store().placement(p).unwrap().disk.0)
                .collect();
            disks.sort_unstable();
            disks.dedup();
            assert_eq!(
                disks.len(),
                head,
                "level {level}: a stripe group's first {head} pages share a disk"
            );
            striped_groups += 1;
        }
    }
    assert!(striped_groups >= 4, "tree too shallow to test striping");
}

#[test]
fn byte_budget_cache_holds_its_cap_during_knn_sweep() {
    let pts = points();
    let mut tree = RStarTree::bulk_load(
        store(42),
        RStarConfig::with_page_size(2, PAGE),
        Box::new(ProximityIndex),
        pts.clone(),
    )
    .unwrap();
    // A budget of a handful of nodes, far below the tree's footprint,
    // so the sweep constantly evicts.
    let budget = 8 * 1024;
    let cache = Arc::new(NodeCache::<Node>::new_bytes(budget, Node::heap_bytes));
    tree.set_node_cache(Arc::clone(&cache));

    for i in 0..200 {
        let q = Point::new(vec![
            ((i * 53) % 4001) as f64 * 0.37,
            ((i * 31) % 3989) as f64 * 0.61,
        ]);
        let neighbors = tree.knn(&q, 10).unwrap();
        assert_eq!(neighbors.len(), 10);
        let stats = cache.stats();
        assert!(
            stats.resident_bytes <= budget,
            "cache blew its budget after query {i}: {} > {budget}",
            stats.resident_bytes
        );
        assert_eq!(stats.byte_budget, budget);
        assert_eq!(stats.capacity, 0, "byte mode must report capacity 0");
    }
    let stats = cache.stats();
    assert!(stats.hits > 0, "sweep never hit the cache");
    assert!(stats.misses > 0, "sweep never missed the cache");
    assert!(stats.len > 0, "cache ended empty");
}
