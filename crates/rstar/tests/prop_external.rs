//! Property-based tests: the out-of-core bulk builder is equivalent to
//! the in-memory one for arbitrary point sets, run capacities and
//! packing orders — byte-identical pages under trailing placement, and
//! the same answers as brute force regardless of how many runs the
//! build spilled.

use proptest::prelude::*;
use sqda_geom::Point;
use sqda_rstar::decluster::ProximityIndex;
use sqda_rstar::{
    ExternalBuildOptions, PackingOrder, PlacementMode, RStarConfig, RStarTree, SliceSource,
};
use sqda_storage::{ArrayStore, PageStore};
use std::sync::Arc;

const PAGE: usize = 1024;

fn point_strategy() -> impl Strategy<Value = [f64; 2]> {
    ((-1000.0..1000.0f64), (-1000.0..1000.0f64)).prop_map(|(x, y)| [x, y])
}

fn order_strategy() -> impl Strategy<Value = PackingOrder> {
    prop_oneof![
        Just(PackingOrder::Str),
        Just(PackingOrder::Morton),
        Just(PackingOrder::Hilbert),
    ]
}

fn to_points(raw: &[[f64; 2]]) -> Vec<(Point, u64)> {
    raw.iter()
        .enumerate()
        .map(|(i, c)| (Point::new(c.to_vec()), i as u64))
        .collect()
}

fn build_external(
    pts: &[(Point, u64)],
    order: PackingOrder,
    run_capacity: usize,
    jobs: usize,
    placement: PlacementMode,
) -> RStarTree<ArrayStore> {
    let scratch = Arc::new(ArrayStore::with_page_size(4, 1449, PAGE, 9));
    let source = SliceSource::new(pts);
    let opts = ExternalBuildOptions {
        run_capacity,
        merge_fanin: 3,
        jobs,
        order,
        placement,
    };
    RStarTree::bulk_load_external(
        Arc::new(ArrayStore::with_page_size(4, 1449, PAGE, 42)),
        RStarConfig::with_page_size(2, PAGE),
        Box::new(ProximityIndex),
        &source,
        &scratch,
        &opts,
    )
    .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Under trailing placement the external build writes the very same
    /// bytes as the in-memory build, for any point set, any packing
    /// order, any run capacity and any parallelism.
    #[test]
    fn external_build_matches_in_memory(
        raw in proptest::collection::vec(point_strategy(), 1..400),
        order in order_strategy(),
        run_capacity in 16usize..128,
        jobs in 1usize..4,
    ) {
        let pts = to_points(&raw);
        let mem = RStarTree::bulk_load_ordered(
            Arc::new(ArrayStore::with_page_size(4, 1449, PAGE, 42)),
            RStarConfig::with_page_size(2, PAGE),
            Box::new(ProximityIndex),
            pts.clone(),
            order,
        )
        .unwrap();
        let ext = build_external(&pts, order, run_capacity, jobs, PlacementMode::Trailing);

        prop_assert_eq!(mem.root_page(), ext.root_page());
        prop_assert_eq!(mem.root_level(), ext.root_level());
        let mut frontier = vec![mem.root_page()];
        while let Some(page) = frontier.pop() {
            prop_assert_eq!(
                mem.store().read(page).unwrap(),
                ext.store().read(page).unwrap(),
                "page {:?} differs", page
            );
            let node = mem.read_node(page).unwrap();
            if !node.is_leaf() {
                frontier.extend(node.internal_iter().map(|e| e.child));
            }
        }
    }

    /// Whatever the spill pattern or placement mode, the external tree
    /// answers k-NN exactly like brute force and keeps its invariants.
    #[test]
    fn external_tree_answers_like_brute_force(
        raw in proptest::collection::vec(point_strategy(), 1..300),
        order in order_strategy(),
        run_capacity in 16usize..96,
        stripe in any::<bool>(),
        qx in -1100.0..1100.0f64,
        qy in -1100.0..1100.0f64,
        k in 1usize..15,
    ) {
        let pts = to_points(&raw);
        let placement = if stripe {
            PlacementMode::SiblingStripe
        } else {
            PlacementMode::Trailing
        };
        let tree = build_external(&pts, order, run_capacity, 2, placement);
        tree.validate().unwrap().unwrap();
        prop_assert_eq!(tree.num_objects() as usize, pts.len());

        let q = Point::new(vec![qx, qy]);
        let got = tree.knn(&q, k).unwrap();
        let mut want: Vec<f64> = pts.iter().map(|(p, _)| q.dist_sq(p)).collect();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        want.truncate(k);
        prop_assert_eq!(got.len(), want.len());
        for (g, w) in got.iter().zip(want.iter()) {
            prop_assert!((g.dist_sq - w).abs() < 1e-9, "got {} want {}", g.dist_sq, w);
        }
    }
}
