//! Deterministic dataset generators for the similarity-search experiments.
//!
//! The paper evaluates on four data sets (Appendix I):
//!
//! | paper | here | notes |
//! |-------|------|-------|
//! | SU — synthetic uniform | [`uniform`] | n-d, unit hyper-cube |
//! | SG — synthetic Gaussian | [`gaussian`] / [`gaussian_clusters`] | n-d |
//! | CP — California Places, 62,173 2-d points (Sequoia 2000) | [`california_like`] | synthetic stand-in |
//! | LB — Long Beach road intersections, 53,145 2-d points (TIGER) | [`long_beach_like`] | synthetic stand-in |
//!
//! The real CP/LB files are not redistributable here, so we generate
//! *stand-ins* that reproduce the characteristics that matter to the
//! algorithms under test: cardinality, dimensionality, and — crucially —
//! strong spatial skew. CP-like data is a power-law mixture of population
//! clusters ("cities") over a background scatter; LB-like data is a
//! jittered street grid with radially varying density. Both are
//! deterministic in the seed.
//!
//! Query points are drawn from the data distribution itself (standard
//! practice, and what makes k-NN experiments meaningful on skewed data):
//! see [`Dataset::sample_queries`].

mod dataset;
mod generators;
mod queries;
mod stream;

pub use dataset::Dataset;
pub use generators::{
    california_like, gaussian, gaussian_clusters, long_beach_like, uniform, CP_CARDINALITY,
    LB_CARDINALITY,
};
pub use stream::{
    gaussian_clusters_stream, gaussian_stream, uniform_stream, GaussianStream, UniformStream,
};
