//! Query-point sampling.

use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqda_geom::Point;

/// Draws `n` query points from the data distribution: a uniformly chosen
/// data point perturbed by a jitter of 1% of the data extent per
/// dimension. Queries follow the data distribution — on skewed data,
/// uniformly random queries would land in empty space and measure nothing
/// interesting.
pub(crate) fn sample_queries(dataset: &Dataset, n: usize, seed: u64) -> Vec<Point> {
    assert!(!dataset.is_empty(), "cannot sample queries from empty data");
    let mut rng = StdRng::seed_from_u64(seed);
    let (lo, hi) = dataset.bounds().expect("non-empty dataset");
    let jitter: Vec<f64> = lo
        .iter()
        .zip(hi.iter())
        .map(|(l, h)| (h - l).max(f64::MIN_POSITIVE) * 0.01)
        .collect();
    (0..n)
        .map(|_| {
            let base = &dataset.points[rng.gen_range(0..dataset.points.len())];
            Point::new(
                base.coords()
                    .iter()
                    .zip(jitter.iter())
                    .map(|(c, j)| c + rng.gen_range(-*j..=*j))
                    .collect(),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::uniform;

    #[test]
    fn queries_follow_data() {
        let d = uniform(1000, 2, 1);
        let qs = d.sample_queries(50, 9);
        assert_eq!(qs.len(), 50);
        for q in &qs {
            assert_eq!(q.dim(), 2);
            // Within data bounds plus jitter.
            for c in q.coords() {
                assert!(*c > -0.02 && *c < 1.02);
            }
        }
    }

    #[test]
    fn queries_deterministic_per_seed() {
        let d = uniform(100, 3, 2);
        assert_eq!(d.sample_queries(10, 5), d.sample_queries(10, 5));
        assert_ne!(d.sample_queries(10, 5), d.sample_queries(10, 6));
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_dataset_panics() {
        let d = Dataset::new("empty", 2, vec![]);
        d.sample_queries(1, 0);
    }
}
