//! Streaming twins of the materializing generators.
//!
//! The out-of-core bulk builder ([`sqda-rstar`'s external build]) consumes
//! points through a multi-pass iterator source, so at 10M+ objects the
//! dataset must never be resident as a `Vec<Point>`. The iterators here
//! draw from the rng in *exactly* the per-point order of their
//! [`crate::generators`] counterparts: `uniform_stream(n, d, s)` yields
//! the same points, in the same order, as `uniform(n, d, s).points` —
//! pinned by the `streams_match_materialized` test — while holding only
//! the rng state (a few dozen bytes) between points.
//!
//! The iterators are cheap to construct, so a multi-pass consumer simply
//! rebuilds one per pass.

use crate::generators::normal;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqda_geom::Point;

/// Streaming twin of [`crate::uniform`]: `n` points uniform in
/// `[0,1]^dim`, identical to the materialized dataset point-for-point.
pub fn uniform_stream(n: usize, dim: usize, seed: u64) -> UniformStream {
    assert!(dim > 0);
    UniformStream {
        rng: StdRng::seed_from_u64(seed),
        dim,
        remaining: n,
    }
}

/// Iterator yielded by [`uniform_stream`].
pub struct UniformStream {
    rng: StdRng,
    dim: usize,
    remaining: usize,
}

impl Iterator for UniformStream {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let coords = (0..self.dim).map(|_| self.rng.gen::<f64>()).collect();
        Some(Point::new(coords))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for UniformStream {}

/// Streaming twin of [`crate::gaussian`]: single isotropic Gaussian,
/// mean 0.5, σ 0.15 per dimension.
pub fn gaussian_stream(n: usize, dim: usize, seed: u64) -> GaussianStream {
    gaussian_clusters_stream(n, dim, 1, seed)
}

/// Streaming twin of [`crate::gaussian_clusters`]. Cluster centers are
/// drawn eagerly at construction (they precede all point draws in the
/// materializing generator), point draws happen lazily per `next()`.
pub fn gaussian_clusters_stream(n: usize, dim: usize, k: usize, seed: u64) -> GaussianStream {
    assert!(dim > 0 && k > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let clusters: Vec<(Vec<f64>, f64)> = if k == 1 {
        vec![(vec![0.5; dim], 0.15)]
    } else {
        (0..k)
            .map(|_| {
                let center: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.15..0.85)).collect();
                let sigma = rng.gen_range(0.02..0.1);
                (center, sigma)
            })
            .collect()
    };
    GaussianStream {
        rng,
        clusters,
        remaining: n,
    }
}

/// Iterator yielded by [`gaussian_stream`] / [`gaussian_clusters_stream`].
pub struct GaussianStream {
    rng: StdRng,
    clusters: Vec<(Vec<f64>, f64)>,
    remaining: usize,
}

impl Iterator for GaussianStream {
    type Item = Point;

    fn next(&mut self) -> Option<Point> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let pick = self.rng.gen_range(0..self.clusters.len());
        let (center, sigma) = &self.clusters[pick];
        // `center` can't be borrowed across the `normal(&mut self.rng)`
        // calls; clone the (short) center into the output buffer first.
        let mut coords: Vec<f64> = center.clone();
        let sigma = *sigma;
        for c in &mut coords {
            *c += sigma * normal(&mut self.rng);
        }
        Some(Point::new(coords))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

impl ExactSizeIterator for GaussianStream {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gaussian, gaussian_clusters, uniform};

    #[test]
    fn streams_match_materialized() {
        let mat = uniform(500, 3, 11);
        let streamed: Vec<Point> = uniform_stream(500, 3, 11).collect();
        assert_eq!(mat.points, streamed);

        let mat = gaussian(500, 4, 11);
        let streamed: Vec<Point> = gaussian_stream(500, 4, 11).collect();
        assert_eq!(mat.points, streamed);

        let mat = gaussian_clusters(500, 2, 7, 11);
        let streamed: Vec<Point> = gaussian_clusters_stream(500, 2, 7, 11).collect();
        assert_eq!(mat.points, streamed);
    }

    #[test]
    fn streams_are_multi_pass_consistent() {
        // Rebuilding the iterator replays the identical sequence — the
        // contract the external builder's multi-pass source relies on.
        let a: Vec<Point> = uniform_stream(200, 2, 3).collect();
        let b: Vec<Point> = uniform_stream(200, 2, 3).collect();
        assert_eq!(a, b);
        let a: Vec<Point> = gaussian_clusters_stream(200, 2, 4, 3).collect();
        let b: Vec<Point> = gaussian_clusters_stream(200, 2, 4, 3).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn streams_report_exact_length() {
        let mut it = uniform_stream(10, 2, 1);
        assert_eq!(it.len(), 10);
        it.next();
        assert_eq!(it.len(), 9);
        assert_eq!(it.count(), 9);
        assert_eq!(gaussian_stream(0, 2, 1).count(), 0);
    }
}
