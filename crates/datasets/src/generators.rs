//! The dataset generators.

use crate::Dataset;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Cardinality of the paper's California Places data set.
pub const CP_CARDINALITY: usize = 62_173;

/// Cardinality of the paper's Long Beach data set.
pub const LB_CARDINALITY: usize = 53_145;

/// Draws a standard-normal sample (Box–Muller; `rand` ships no normal
/// distribution without `rand_distr`, which is outside the approved
/// dependency set).
pub(crate) fn normal(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        if u1 > f64::MIN_POSITIVE {
            return (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        }
    }
}

/// SU: `n` points uniform in the unit hyper-cube `[0,1]^dim`.
pub fn uniform(n: usize, dim: usize, seed: u64) -> Dataset {
    assert!(dim > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let points = (0..n)
        .map(|_| sqda_geom::Point::new((0..dim).map(|_| rng.gen::<f64>()).collect()))
        .collect();
    Dataset::new(format!("uniform-{dim}d"), dim, points)
}

/// SG: `n` points from a single isotropic Gaussian centered in the unit
/// cube (mean 0.5, σ 0.15 per dimension).
pub fn gaussian(n: usize, dim: usize, seed: u64) -> Dataset {
    gaussian_clusters(n, dim, 1, seed)
}

/// `n` points from `k` isotropic Gaussian clusters with random centers in
/// `[0.15, 0.85]^dim` and per-cluster σ in `[0.02, 0.1]`. With `k = 1` the
/// center is fixed at 0.5 and σ = 0.15 (the paper's single-Gaussian SG
/// set).
pub fn gaussian_clusters(n: usize, dim: usize, k: usize, seed: u64) -> Dataset {
    assert!(dim > 0 && k > 0);
    let mut rng = StdRng::seed_from_u64(seed);
    let clusters: Vec<(Vec<f64>, f64)> = if k == 1 {
        vec![(vec![0.5; dim], 0.15)]
    } else {
        (0..k)
            .map(|_| {
                let center: Vec<f64> = (0..dim).map(|_| rng.gen_range(0.15..0.85)).collect();
                let sigma = rng.gen_range(0.02..0.1);
                (center, sigma)
            })
            .collect()
    };
    let points = (0..n)
        .map(|_| {
            let (center, sigma) = &clusters[rng.gen_range(0..clusters.len())];
            sqda_geom::Point::new(
                center
                    .iter()
                    .map(|c| c + sigma * normal(&mut rng))
                    .collect(),
            )
        })
        .collect();
    let name = if k == 1 {
        format!("gaussian-{dim}d")
    } else {
        format!("gaussian{k}-{dim}d")
    };
    Dataset::new(name, dim, points)
}

/// CP stand-in: a 2-d population-center mixture in the unit square.
///
/// Structure (mirroring what makes the real Sequoia "California places"
/// set hard for an R-tree): ~60 "cities" with Zipf-distributed sizes and
/// varying spreads, 8% rural background scatter. Dense metropolitan
/// clusters produce heavily overlapping, small MBRs — the regime where
/// candidate-reduction pays off.
pub fn california_like(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    const CITIES: usize = 60;
    // Zipf-ish weights: w_i = 1 / (i+1).
    let weights: Vec<f64> = (0..CITIES).map(|i| 1.0 / (i + 1) as f64).collect();
    let total_w: f64 = weights.iter().sum();
    let centers: Vec<(f64, f64, f64)> = (0..CITIES)
        .map(|i| {
            // Bias city centers towards a "coast": x correlated with y.
            let t: f64 = rng.gen();
            let x = 0.15 + 0.7 * t + 0.1 * normal(&mut rng);
            let y = 0.1 + 0.8 * (1.0 - t) + 0.1 * normal(&mut rng);
            // Large cities are denser (smaller spread per point).
            let sigma = 0.004 + 0.03 * (i as f64 / CITIES as f64);
            (x.clamp(0.02, 0.98), y.clamp(0.02, 0.98), sigma)
        })
        .collect();
    let background = n * 8 / 100;
    let clustered = n - background;
    let mut points = Vec::with_capacity(n);
    for _ in 0..clustered {
        // Weighted city choice.
        let mut pick: f64 = rng.gen::<f64>() * total_w;
        let mut idx = 0;
        for (i, w) in weights.iter().enumerate() {
            if pick < *w {
                idx = i;
                break;
            }
            pick -= w;
            idx = i;
        }
        let (cx, cy, sigma) = centers[idx];
        let x = (cx + sigma * normal(&mut rng)).clamp(0.0, 1.0);
        let y = (cy + sigma * normal(&mut rng)).clamp(0.0, 1.0);
        points.push(sqda_geom::Point::new(vec![x, y]));
    }
    for _ in 0..background {
        points.push(sqda_geom::Point::new(vec![rng.gen(), rng.gen()]));
    }
    Dataset::new("california-like", 2, points)
}

/// LB stand-in: a 2-d jittered street grid with radially varying density.
///
/// Road-intersection data is near-regular locally (street grids) but its
/// density varies across the county; we emulate both: a fine grid whose
/// intersections are retained with probability decreasing away from two
/// "downtown" density peaks, plus per-intersection jitter.
pub fn long_beach_like(n: usize, seed: u64) -> Dataset {
    let mut rng = StdRng::seed_from_u64(seed);
    let peaks = [(0.35, 0.55, 0.25), (0.7, 0.3, 0.18)];
    let density = |x: f64, y: f64| -> f64 {
        let mut d: f64 = 0.08; // base suburban density
        for (px, py, scale) in peaks {
            let dist2 = (x - px) * (x - px) + (y - py) * (y - py);
            d += (-dist2 / (2.0 * scale * scale)).exp();
        }
        d.min(1.0)
    };
    // Choose the grid pitch so that the expected kept intersections ≈ n.
    // Average density over the unit square is estimated by sampling.
    let mut avg = 0.0;
    const PROBES: usize = 4096;
    for _ in 0..PROBES {
        avg += density(rng.gen(), rng.gen());
    }
    avg /= PROBES as f64;
    let cells = (n as f64 / avg).sqrt().ceil() as usize;
    let pitch = 1.0 / cells as f64;
    let mut points = Vec::with_capacity(n + n / 8);
    'outer: for gy in 0..cells {
        for gx in 0..cells {
            let x = (gx as f64 + 0.5) * pitch;
            let y = (gy as f64 + 0.5) * pitch;
            if rng.gen::<f64>() < density(x, y) {
                let jx = x + pitch * 0.25 * normal(&mut rng);
                let jy = y + pitch * 0.25 * normal(&mut rng);
                points.push(sqda_geom::Point::new(vec![
                    jx.clamp(0.0, 1.0),
                    jy.clamp(0.0, 1.0),
                ]));
                if points.len() == n {
                    break 'outer;
                }
            }
        }
    }
    // Top up if the grid undershot (rare): extra jittered intersections
    // near the first peak.
    while points.len() < n {
        let x = (peaks[0].0 + 0.2 * normal(&mut rng)).clamp(0.0, 1.0);
        let y = (peaks[0].1 + 0.2 * normal(&mut rng)).clamp(0.0, 1.0);
        points.push(sqda_geom::Point::new(vec![x, y]));
    }
    Dataset::new("long-beach-like", 2, points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_cube() {
        let d = uniform(5000, 3, 1);
        assert_eq!(d.len(), 5000);
        assert_eq!(d.dim, 3);
        let (lo, hi) = d.bounds().unwrap();
        for dd in 0..3 {
            assert!(lo[dd] >= 0.0 && lo[dd] < 0.01, "lo {lo:?}");
            assert!(hi[dd] <= 1.0 && hi[dd] > 0.99, "hi {hi:?}");
        }
    }

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(uniform(100, 2, 7), uniform(100, 2, 7));
        assert_eq!(gaussian(100, 5, 7), gaussian(100, 5, 7));
        assert_eq!(california_like(1000, 7), california_like(1000, 7));
        assert_eq!(long_beach_like(1000, 7), long_beach_like(1000, 7));
        assert_ne!(uniform(100, 2, 7), uniform(100, 2, 8));
    }

    #[test]
    fn gaussian_concentrates_near_center() {
        let d = gaussian(10_000, 2, 2);
        let near_center = d
            .points
            .iter()
            .filter(|p| {
                let dx = p.coord(0) - 0.5;
                let dy = p.coord(1) - 0.5;
                (dx * dx + dy * dy).sqrt() < 0.3 // 2σ
            })
            .count();
        // 2σ radius holds ~86% of a 2-d Gaussian.
        assert!(near_center > 8000, "only {near_center} near center");
    }

    #[test]
    fn gaussian_clusters_multimodal() {
        let d = gaussian_clusters(5000, 2, 5, 3);
        assert_eq!(d.len(), 5000);
        assert_eq!(d.dim, 2);
    }

    #[test]
    fn california_like_is_skewed() {
        let d = california_like(20_000, 4);
        assert_eq!(d.len(), 20_000);
        // Skew test: split the square into a 10x10 grid; the most populous
        // cell must hold far more than the uniform share (1%).
        let mut cells = [0usize; 100];
        for p in &d.points {
            let gx = (p.coord(0) * 10.0).min(9.0) as usize;
            let gy = (p.coord(1) * 10.0).min(9.0) as usize;
            cells[gy * 10 + gx] += 1;
        }
        let max = *cells.iter().max().unwrap();
        assert!(
            max > d.len() / 20,
            "max cell {max} of {} — not skewed enough",
            d.len()
        );
    }

    #[test]
    fn long_beach_like_has_exact_cardinality() {
        let d = long_beach_like(LB_CARDINALITY, 5);
        assert_eq!(d.len(), LB_CARDINALITY);
        let (lo, hi) = d.bounds().unwrap();
        assert!(lo.iter().all(|&c| c >= 0.0));
        assert!(hi.iter().all(|&c| c <= 1.0));
    }

    #[test]
    fn long_beach_like_density_varies() {
        let d = long_beach_like(20_000, 6);
        let mut cells = [0usize; 25];
        for p in &d.points {
            let gx = (p.coord(0) * 5.0).min(4.0) as usize;
            let gy = (p.coord(1) * 5.0).min(4.0) as usize;
            cells[gy * 5 + gx] += 1;
        }
        let max = *cells.iter().max().unwrap();
        let min = *cells.iter().min().unwrap();
        assert!(max > 3 * min.max(1), "density too even: {cells:?}");
    }
}
