//! The `Dataset` container and CSV round-tripping.

use sqda_geom::Point;
use std::io::{BufRead, BufWriter, Write};
use std::path::Path;

/// A named collection of points with uniform dimensionality.
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    /// Human-readable name (appears in experiment output).
    pub name: String,
    /// Dimensionality of every point.
    pub dim: usize,
    /// The data points.
    pub points: Vec<Point>,
}

impl Dataset {
    /// Creates a dataset, validating dimensional consistency.
    ///
    /// # Panics
    ///
    /// Panics if any point has a different dimensionality than `dim`.
    pub fn new(name: impl Into<String>, dim: usize, points: Vec<Point>) -> Self {
        let name = name.into();
        for (i, p) in points.iter().enumerate() {
            assert_eq!(
                p.dim(),
                dim,
                "point {i} of dataset {name} has dimension {} (expected {dim})",
                p.dim()
            );
        }
        Self { name, dim, points }
    }

    /// Number of points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the dataset has no points.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Draws `n` query points from the data distribution: uniformly
    /// sampled data points, each perturbed by a small jitter so queries
    /// rarely coincide exactly with an indexed object.
    pub fn sample_queries(&self, n: usize, seed: u64) -> Vec<Point> {
        crate::queries::sample_queries(self, n, seed)
    }

    /// The bounding box of the data, as (lo, hi) coordinate vectors.
    /// Returns `None` for an empty dataset.
    pub fn bounds(&self) -> Option<(Vec<f64>, Vec<f64>)> {
        let first = self.points.first()?;
        let mut lo = first.coords().to_vec();
        let mut hi = lo.clone();
        for p in &self.points[1..] {
            for (d, &c) in p.coords().iter().enumerate() {
                if c < lo[d] {
                    lo[d] = c;
                }
                if c > hi[d] {
                    hi[d] = c;
                }
            }
        }
        Some((lo, hi))
    }

    /// Writes the points as CSV (one point per line, comma-separated
    /// coordinates).
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        let file = std::fs::File::create(path)?;
        let mut w = BufWriter::new(file);
        for p in &self.points {
            let line: Vec<String> = p.coords().iter().map(|c| c.to_string()).collect();
            writeln!(w, "{}", line.join(","))?;
        }
        w.flush()
    }

    /// Reads points from CSV written by [`Dataset::write_csv`].
    pub fn read_csv(name: impl Into<String>, path: &Path) -> std::io::Result<Self> {
        let file = std::fs::File::open(path)?;
        let reader = std::io::BufReader::new(file);
        let mut points = Vec::new();
        let mut dim = 0usize;
        for (lineno, line) in reader.lines().enumerate() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let coords: Result<Vec<f64>, _> =
                line.split(',').map(|s| s.trim().parse::<f64>()).collect();
            let coords = coords.map_err(|e| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("line {}: {e}", lineno + 1),
                )
            })?;
            if dim == 0 {
                dim = coords.len();
            } else if coords.len() != dim {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("line {}: expected {dim} coordinates", lineno + 1),
                ));
            }
            points.push(Point::new(coords));
        }
        Ok(Self::new(name, dim.max(1), points))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::new(
            "sample",
            2,
            vec![
                Point::new(vec![0.0, 1.0]),
                Point::new(vec![2.5, -3.0]),
                Point::new(vec![-1.0, 4.0]),
            ],
        )
    }

    #[test]
    fn bounds_cover_all_points() {
        let (lo, hi) = sample().bounds().unwrap();
        assert_eq!(lo, vec![-1.0, -3.0]);
        assert_eq!(hi, vec![2.5, 4.0]);
    }

    #[test]
    fn empty_dataset_bounds() {
        let d = Dataset::new("empty", 2, vec![]);
        assert!(d.bounds().is_none());
        assert!(d.is_empty());
    }

    #[test]
    #[should_panic(expected = "dimension")]
    fn mixed_dimension_panics() {
        Dataset::new(
            "bad",
            2,
            vec![Point::new(vec![0.0, 1.0]), Point::new(vec![1.0])],
        );
    }

    #[test]
    fn csv_roundtrip() {
        let d = sample();
        let dir = std::env::temp_dir().join("sqda-datasets-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.csv");
        d.write_csv(&path).unwrap();
        let back = Dataset::read_csv("sample", &path).unwrap();
        assert_eq!(d, back);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn csv_rejects_garbage() {
        let dir = std::env::temp_dir().join("sqda-datasets-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.csv");
        std::fs::write(&path, "1.0,2.0\nnot,a,number\n").unwrap();
        assert!(Dataset::read_csv("bad", &path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
