//! `sqda report` — renders a results directory into one self-contained
//! HTML dashboard: per-figure curves with 95% CI bands, the fault-sweep
//! and hot-path trends, headline stat tiles, and run provenance
//! (manifests), with zero external assets.
//!
//! The page embeds all its data in a single
//! `<script id="sqda-data" type="application/json">` block, built here
//! deterministically from the directory contents (files sorted by name,
//! raw sub-documents validated before inclusion) so a fixed results
//! directory always produces byte-identical data — the golden test pins
//! that block for a canned 2-disk run. Chart drawing happens in inline
//! JavaScript against that block.

use crate::args::Args;
use sqda_obs::json::{parse, write_str, ObjWriter};
use std::error::Error;
use std::path::{Path, PathBuf};

type CmdResult = Result<(), Box<dyn Error + Send + Sync>>;

/// Entry point for `sqda report`.
pub fn report(args: &Args) -> CmdResult {
    let dir = PathBuf::from(args.get("results-dir").unwrap_or("results"));
    let out = PathBuf::from(args.get("out").unwrap_or("report.html"));
    if !dir.is_dir() {
        return Err(format!("results directory {} does not exist", dir.display()).into());
    }
    let data = build_data_json(&dir)?;
    std::fs::write(&out, render_html(&data))?;
    eprintln!("wrote {}", out.display());
    Ok(())
}

/// Reads `path` and returns its contents only when they parse as JSON;
/// malformed documents are skipped with a warning instead of corrupting
/// the embedded block.
fn read_valid_json(path: &Path) -> Option<String> {
    let text = std::fs::read_to_string(path).ok()?;
    match parse(text.trim()) {
        Ok(_) => Some(text.trim().to_string()),
        Err(e) => {
            eprintln!("  skipping malformed {}: {e}", path.display());
            None
        }
    }
}

/// Sorted file names under `dir` with the given suffix stripped.
fn stems_with_suffix(dir: &Path, suffix: &str) -> Vec<String> {
    let mut out: Vec<String> = match std::fs::read_dir(dir) {
        Ok(entries) => entries
            .filter_map(|e| e.ok())
            .filter_map(|e| {
                let name = e.file_name().to_string_lossy().into_owned();
                name.strip_suffix(suffix).map(str::to_string)
            })
            .collect(),
        Err(_) => Vec::new(),
    };
    out.sort();
    out
}

/// Parses one of the suite's CSVs (plain comma-joined rows, no quoting)
/// into a JSON object `{"name":…,"columns":[…],"rows":[[…]]}`. Rows are
/// kept ragged as written — a cell containing a comma splits, and the
/// table renderer tolerates it.
fn csv_to_json(name: &str, text: &str) -> String {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header: Vec<&str> = lines
        .next()
        .map(|h| h.split(',').collect())
        .unwrap_or_default();
    let mut columns = String::from("[");
    for (i, h) in header.iter().enumerate() {
        if i > 0 {
            columns.push(',');
        }
        write_str(&mut columns, h);
    }
    columns.push(']');
    let mut rows = String::from("[");
    for (i, line) in lines.enumerate() {
        if i > 0 {
            rows.push(',');
        }
        rows.push('[');
        for (j, cell) in line.split(',').enumerate() {
            if j > 0 {
                rows.push(',');
            }
            write_str(&mut rows, cell);
        }
        rows.push(']');
    }
    rows.push(']');
    let mut w = ObjWriter::new();
    w.field_str("name", name);
    w.field_raw("columns", &columns);
    w.field_raw("rows", &rows);
    w.finish()
}

/// Builds the embedded data block from a results directory. Pure
/// function of the directory contents; every listing is sorted so the
/// bytes are reproducible.
pub fn build_data_json(dir: &Path) -> Result<String, Box<dyn Error + Send + Sync>> {
    let summary = read_valid_json(&dir.join("BENCH_summary.json"));
    let fault = read_valid_json(&dir.join("BENCH_fault.json"));
    let hotpath = read_valid_json(&dir.join("BENCH_hotpath.json"));
    let explain = read_valid_json(&dir.join("BENCH_explain.json"));

    // Standalone schema-v2 fragments; the dashboard overlays them on the
    // summary's merged `benches` object (same content when both exist).
    let frag_dir = dir.join("bench");
    let mut fragments = String::from("{");
    for (i, name) in stems_with_suffix(&frag_dir, ".json").iter().enumerate() {
        let Some(raw) = read_valid_json(&frag_dir.join(format!("{name}.json"))) else {
            continue;
        };
        if i > 0 {
            fragments.push(',');
        }
        write_str(&mut fragments, name);
        fragments.push(':');
        fragments.push_str(&raw);
    }
    fragments.push('}');

    let mut manifests = String::from("{");
    let mut first = true;
    for name in stems_with_suffix(dir, ".manifest.json") {
        let Some(raw) = read_valid_json(&dir.join(format!("{name}.manifest.json"))) else {
            continue;
        };
        if !first {
            manifests.push(',');
        }
        first = false;
        write_str(&mut manifests, &name);
        manifests.push(':');
        manifests.push_str(&raw);
    }
    manifests.push('}');

    let mut csvs = String::from("[");
    for (i, name) in stems_with_suffix(dir, ".csv").iter().enumerate() {
        let text = std::fs::read_to_string(dir.join(format!("{name}.csv")))?;
        if i > 0 {
            csvs.push(',');
        }
        csvs.push_str(&csv_to_json(name, &text));
    }
    csvs.push(']');

    let mut w = ObjWriter::new();
    w.field_str("results_dir", &dir.display().to_string());
    w.field_raw("summary", summary.as_deref().unwrap_or("null"));
    w.field_raw("fragments", &fragments);
    w.field_raw("manifests", &manifests);
    w.field_raw("csvs", &csvs);
    w.field_raw("fault", fault.as_deref().unwrap_or("null"));
    w.field_raw("hotpath", hotpath.as_deref().unwrap_or("null"));
    w.field_raw("explain", explain.as_deref().unwrap_or("null"));
    Ok(w.finish())
}

/// Wraps the data block in the dashboard page. `</` is escaped to keep
/// the inline `<script>` well-formed regardless of string contents.
pub fn render_html(data_json: &str) -> String {
    let safe = data_json.replace("</", "<\\/");
    PAGE.replace("__SQDA_DATA__", &safe)
}

/// The dashboard shell. Styling and chart rules follow a validated
/// palette: categorical slots assigned to algorithms in fixed order
/// (never recoloured when series drop out), 2px lines with ≥8px
/// end-markers ringed in the surface colour, CI bands as ~12% opacity
/// washes of the series hue, solid hairline gridlines, a legend plus a
/// table view for every chart, and a crosshair tooltip listing every
/// series at the snapped x. Dark mode is a selected palette, not an
/// automatic inversion.
const PAGE: &str = r##"<!doctype html>
<html lang="en">
<head>
<meta charset="utf-8">
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>sqda benchmark report</title>
<style>
:root {
  color-scheme: light;
  --surface-1: #fcfcfb; --page: #f9f9f7;
  --ink-1: #0b0b0b; --ink-2: #52514e; --ink-3: #898781;
  --grid: #e1e0d9; --axis: #c3c2b7; --ring: rgba(11,11,11,0.10);
  --s1: #2a78d6; --s2: #eb6834; --s3: #1baf7a; --s4: #eda100;
  --s5: #e87ba4; --s6: #008300; --s7: #4a3aa7; --s8: #e34948;
}
@media (prefers-color-scheme: dark) {
  :root:not([data-theme="light"]) {
    color-scheme: dark;
    --surface-1: #1a1a19; --page: #0d0d0d;
    --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-3: #898781;
    --grid: #2c2c2a; --axis: #383835; --ring: rgba(255,255,255,0.10);
    --s1: #3987e5; --s2: #d95926; --s3: #199e70; --s4: #c98500;
    --s5: #d55181; --s6: #008300; --s7: #9085e9; --s8: #e66767;
  }
}
:root[data-theme="dark"] {
  color-scheme: dark;
  --surface-1: #1a1a19; --page: #0d0d0d;
  --ink-1: #ffffff; --ink-2: #c3c2b7; --ink-3: #898781;
  --grid: #2c2c2a; --axis: #383835; --ring: rgba(255,255,255,0.10);
  --s1: #3987e5; --s2: #d95926; --s3: #199e70; --s4: #c98500;
  --s5: #d55181; --s6: #008300; --s7: #9085e9; --s8: #e66767;
}
* { box-sizing: border-box; }
body {
  margin: 0; background: var(--page); color: var(--ink-1);
  font: 14px/1.45 system-ui, -apple-system, "Segoe UI", sans-serif;
}
main { max-width: 1100px; margin: 0 auto; padding: 24px 20px 64px; }
h1 { font-size: 20px; font-weight: 600; margin: 8px 0 2px; }
h2 { font-size: 15px; font-weight: 600; margin: 36px 0 10px; color: var(--ink-1); }
.sub { color: var(--ink-2); margin: 0 0 4px; }
.card {
  background: var(--surface-1); border: 1px solid var(--ring);
  border-radius: 8px; padding: 16px 16px 10px; margin: 12px 0;
}
.card h3 { font-size: 13px; font-weight: 600; margin: 0 0 2px; }
.card .meta { color: var(--ink-3); font-size: 12px; margin: 0 0 8px; }
.grid2 { display: grid; grid-template-columns: repeat(auto-fill, minmax(480px, 1fr)); gap: 12px; }
.tiles { display: grid; grid-template-columns: repeat(auto-fill, minmax(190px, 1fr)); gap: 12px; }
.tile {
  background: var(--surface-1); border: 1px solid var(--ring);
  border-radius: 8px; padding: 12px 14px;
}
.tile .lbl { color: var(--ink-2); font-size: 12px; }
.tile .val { font-size: 26px; font-weight: 600; margin-top: 2px; }
.tile .ci { color: var(--ink-3); font-size: 12px; margin-top: 2px; }
svg { display: block; width: 100%; height: auto; }
.legend { display: flex; flex-wrap: wrap; gap: 6px 16px; margin: 6px 2px 2px; }
.legend .key { display: inline-flex; align-items: center; gap: 6px; color: var(--ink-2); font-size: 12px; }
.legend .key i { display: inline-block; width: 14px; height: 0; border-top: 2px solid; border-radius: 1px; }
details { margin: 6px 0 2px; }
summary { color: var(--ink-3); font-size: 12px; cursor: pointer; }
table { border-collapse: collapse; font-size: 12px; margin: 8px 0; }
th, td { text-align: right; padding: 3px 10px; border-bottom: 1px solid var(--grid); font-variant-numeric: tabular-nums; }
th:first-child, td:first-child { text-align: left; }
th { color: var(--ink-2); font-weight: 600; }
.tip {
  position: fixed; pointer-events: none; display: none; z-index: 10;
  background: var(--surface-1); border: 1px solid var(--ring); border-radius: 6px;
  box-shadow: 0 2px 10px rgba(0,0,0,0.12); padding: 8px 10px; font-size: 12px;
}
.tip .x { color: var(--ink-2); margin-bottom: 4px; }
.tip .row { display: flex; align-items: center; gap: 6px; }
.tip .row i { display: inline-block; width: 12px; height: 0; border-top: 2px solid; }
.tip .row b { font-variant-numeric: tabular-nums; }
.tip .row span { color: var(--ink-2); }
.empty { color: var(--ink-3); font-style: italic; }
.mono { font-family: ui-monospace, monospace; font-size: 12px; }
</style>
</head>
<body>
<script id="sqda-data" type="application/json">__SQDA_DATA__</script>
<main id="app"></main>
<div class="tip" id="tip"></div>
<script>
"use strict";
const DATA = JSON.parse(document.getElementById("sqda-data").textContent);
const app = document.getElementById("app");
const tip = document.getElementById("tip");

// Colour follows the entity: fixed slots per algorithm, stable across
// every chart on the page; other series names take slots in first-seen
// order from a single shared registry (never recoloured per chart).
const FIXED = { BBSS: 1, FPSS: 2, CRSS: 3, WOPTSS: 4 };
const slotOf = (() => {
  const assigned = new Map();
  let next = 5;
  return name => {
    if (FIXED[name]) return FIXED[name];
    if (!assigned.has(name)) { assigned.set(name, next <= 8 ? next++ : 8); }
    return assigned.get(name);
  };
})();
const color = name => `var(--s${slotOf(name)})`;

const el = (tag, cls, text) => {
  const e = document.createElement(tag);
  if (cls) e.className = cls;
  if (text !== undefined) e.textContent = text;
  return e;
};
const fmt = v => {
  if (!isFinite(v)) return "—";
  const a = Math.abs(v);
  if (a !== 0 && (a < 0.001 || a >= 100000)) return v.toExponential(2);
  return +v.toFixed(a < 1 ? 4 : a < 100 ? 3 : 1) + "";
};

// ---- chart extraction from schema-v2 fragments -----------------------
const X_KEYS = ["k", "lambda", "disks", "failed", "u", "cpus", "population"];
function chartsFromFragment(bench, frag) {
  const metrics = (frag.metrics || []).filter(m => m.direction !== "info");
  const byName = new Map();
  for (const m of metrics) {
    if (!byName.has(m.name)) byName.set(m.name, []);
    byName.get(m.name).push(m);
  }
  const charts = [];
  for (const [name, ms] of byName) {
    const keys = Object.keys(ms[0].labels || {});
    const xKey = X_KEYS.find(k =>
      keys.includes(k) &&
      ms.every(m => isFinite(parseFloat(m.labels[k]))) &&
      new Set(ms.map(m => m.labels[k])).size > 1);
    if (!xKey) continue;
    const sKey = keys.includes("algorithm") && xKey !== "algorithm" ? "algorithm"
      : keys.find(k => k !== xKey && new Set(ms.map(m => m.labels[k])).size > 1 &&
                       ms.every(m => !isFinite(parseFloat(m.labels[k]))));
    const facetKeys = keys.filter(k => k !== xKey && k !== sKey &&
      new Set(ms.map(m => m.labels[k])).size > 1);
    const facets = new Map();
    for (const m of ms) {
      const fk = facetKeys.map(k => `${k}=${m.labels[k]}`).join(", ");
      if (!facets.has(fk)) facets.set(fk, []);
      facets.get(fk).push(m);
    }
    for (const [facet, fms] of facets) {
      const series = new Map();
      for (const m of fms) {
        const s = sKey ? m.labels[sKey] : name;
        if (!series.has(s)) series.set(s, []);
        series.get(s).push({ x: parseFloat(m.labels[xKey]), y: m.mean, ci: m.ci95 || 0 });
      }
      for (const pts of series.values()) pts.sort((a, b) => a.x - b.x);
      charts.push({ bench, metric: name, facet, xKey, series });
    }
  }
  return charts;
}

// ---- SVG line chart with CI bands ------------------------------------
function lineChart(chart) {
  const W = 520, H = 260, M = { l: 52, r: 16, t: 12, b: 34 };
  const pts = [...chart.series.values()].flat();
  const xs = pts.map(p => p.x);
  const lo = Math.min(0, ...pts.map(p => p.y - p.ci));
  const hi = Math.max(...pts.map(p => p.y + p.ci)) || 1;
  const x0 = Math.min(...xs), x1 = Math.max(...xs);
  const X = v => M.l + (v - x0) / (x1 - x0 || 1) * (W - M.l - M.r);
  const Y = v => H - M.b - (v - lo) / (hi - lo || 1) * (H - M.t - M.b);
  const svgNS = "http://www.w3.org/2000/svg";
  const svg = document.createElementNS(svgNS, "svg");
  svg.setAttribute("viewBox", `0 0 ${W} ${H}`);
  const add = (parent, tag, attrs) => {
    const n = document.createElementNS(svgNS, tag);
    for (const [k, v] of Object.entries(attrs)) n.setAttribute(k, v);
    parent.appendChild(n);
    return n;
  };
  // recessive solid hairline grid + labels on clean y ticks
  const ticks = 4;
  for (let i = 0; i <= ticks; i++) {
    const v = lo + (hi - lo) * i / ticks, y = Y(v);
    add(svg, "line", { x1: M.l, x2: W - M.r, y1: y, y2: y, stroke: "var(--grid)", "stroke-width": 1 });
    const t = add(svg, "text", { x: M.l - 6, y: y + 4, "text-anchor": "end",
      fill: "var(--ink-3)", "font-size": 10 });
    t.textContent = fmt(v);
  }
  add(svg, "line", { x1: M.l, x2: W - M.r, y1: H - M.b, y2: H - M.b, stroke: "var(--axis)", "stroke-width": 1 });
  const xTicks = [...new Set(xs)].sort((a, b) => a - b);
  for (const v of xTicks) {
    const t = add(svg, "text", { x: X(v), y: H - M.b + 14, "text-anchor": "middle",
      fill: "var(--ink-3)", "font-size": 10 });
    t.textContent = fmt(v);
  }
  const xlab = add(svg, "text", { x: (M.l + W - M.r) / 2, y: H - 4, "text-anchor": "middle",
    fill: "var(--ink-2)", "font-size": 11 });
  xlab.textContent = chart.xKey;
  // CI band: a wash of the series hue. Then the 2px line, then ≥8px
  // end-markers carrying a 2px surface ring.
  for (const [name, sp] of chart.series) {
    const c = color(name);
    if (sp.some(p => p.ci > 0)) {
      const up = sp.map(p => `${X(p.x)},${Y(p.y + p.ci)}`);
      const dn = [...sp].reverse().map(p => `${X(p.x)},${Y(p.y - p.ci)}`);
      add(svg, "polygon", { points: up.concat(dn).join(" "), fill: c, opacity: 0.12 });
    }
  }
  for (const [name, sp] of chart.series) {
    const c = color(name);
    add(svg, "polyline", { points: sp.map(p => `${X(p.x)},${Y(p.y)}`).join(" "),
      fill: "none", stroke: c, "stroke-width": 2, "stroke-linejoin": "round", "stroke-linecap": "round" });
    for (const p of sp) {
      add(svg, "circle", { cx: X(p.x), cy: Y(p.y), r: 4, fill: c,
        stroke: "var(--surface-1)", "stroke-width": 2 });
    }
  }
  // crosshair + one tooltip listing every series at the snapped x
  const cross = add(svg, "line", { x1: 0, x2: 0, y1: M.t, y2: H - M.b,
    stroke: "var(--axis)", "stroke-width": 1, visibility: "hidden" });
  svg.addEventListener("pointermove", ev => {
    const r = svg.getBoundingClientRect();
    const px = (ev.clientX - r.left) / r.width * W;
    let best = xTicks[0];
    for (const v of xTicks) if (Math.abs(X(v) - px) < Math.abs(X(best) - px)) best = v;
    cross.setAttribute("x1", X(best));
    cross.setAttribute("x2", X(best));
    cross.setAttribute("visibility", "visible");
    tip.replaceChildren();
    tip.appendChild(el("div", "x", `${chart.xKey} = ${fmt(best)}`));
    for (const [name, sp] of chart.series) {
      const p = sp.find(q => q.x === best);
      if (!p) continue;
      const row = el("div", "row");
      const key = el("i");
      key.style.borderTopColor = color(name);
      row.appendChild(key);
      row.appendChild(el("b", "", fmt(p.y) + (p.ci ? ` ±${fmt(p.ci)}` : "")));
      row.appendChild(el("span", "", name));
      tip.appendChild(row);
    }
    tip.style.display = "block";
    tip.style.left = Math.min(ev.clientX + 14, innerWidth - 180) + "px";
    tip.style.top = ev.clientY + 14 + "px";
  });
  svg.addEventListener("pointerleave", () => {
    tip.style.display = "none";
    cross.setAttribute("visibility", "hidden");
  });
  return svg;
}

function chartCard(chart) {
  const card = el("div", "card");
  card.appendChild(el("h3", "", `${chart.bench} — ${chart.metric}`));
  if (chart.facet) card.appendChild(el("p", "meta", chart.facet));
  card.appendChild(lineChart(chart));
  if (chart.series.size > 1) {
    const leg = el("div", "legend");
    for (const name of chart.series.keys()) {
      const k = el("span", "key");
      const i = el("i");
      i.style.borderTopColor = color(name);
      k.appendChild(i);
      k.appendChild(document.createTextNode(name));
      leg.appendChild(k);
    }
    card.appendChild(leg);
  }
  // table view: every charted value reachable without hover
  const det = el("details");
  det.appendChild(el("summary", "", "data table"));
  const tbl = el("table");
  const head = el("tr");
  head.appendChild(el("th", "", chart.xKey));
  for (const name of chart.series.keys()) head.appendChild(el("th", "", name + " (mean ± ci95)"));
  tbl.appendChild(head);
  const xsAll = [...new Set([...chart.series.values()].flat().map(p => p.x))].sort((a, b) => a - b);
  for (const x of xsAll) {
    const tr = el("tr");
    tr.appendChild(el("td", "", fmt(x)));
    for (const sp of chart.series.values()) {
      const p = sp.find(q => q.x === x);
      tr.appendChild(el("td", "", p ? `${fmt(p.y)} ± ${fmt(p.ci)}` : "—"));
    }
    tbl.appendChild(tr);
  }
  det.appendChild(tbl);
  card.appendChild(det);
  return card;
}

// ---- page assembly ---------------------------------------------------
app.appendChild(el("h1", "", "sqda benchmark report"));
app.appendChild(el("p", "sub", `results: ${DATA.results_dir}`));
const s = DATA.summary;
if (s) {
  const bits = [];
  if (s.schema) bits.push(`schema v${s.schema}`);
  if (s.reps) bits.push(`${s.reps} replication(s)`);
  if (s.quick !== undefined) bits.push(s.quick ? "quick mode" : "full scale");
  if (s.rng_fingerprint) bits.push(`rng ${s.rng_fingerprint}`);
  app.appendChild(el("p", "sub", bits.join(" · ")));
}

// headline stat tiles
if (s && Array.isArray(s.headline) && s.headline.length) {
  app.appendChild(el("h2", "", "Headline — canonical run, mean response (s)"));
  const tiles = el("div", "tiles");
  const benches = Object.assign({}, s.benches || {}, DATA.fragments || {});
  const hl = (benches.headline && benches.headline.metrics) || [];
  for (const h of s.headline) {
    const t = el("div", "tile");
    t.appendChild(el("div", "lbl", h.algorithm));
    t.appendChild(el("div", "val", fmt(h.mean_response_s)));
    const m = hl.find(x => x.labels && x.labels.algorithm === h.algorithm);
    if (m && m.ci95) t.appendChild(el("div", "ci", `mean ${fmt(m.mean)} ± ${fmt(m.ci95)} (n=${m.count})`));
    tiles.appendChild(t);
  }
  app.appendChild(tiles);
}

// per-bench curves with CI bands
const benches = Object.assign({}, (s && s.benches) || {}, DATA.fragments || {});
const names = Object.keys(benches).sort();
const allCharts = [];
for (const b of names) allCharts.push(...chartsFromFragment(b, benches[b]));
if (allCharts.length) {
  app.appendChild(el("h2", "", "Experiment curves — mean ± 95% CI over replications"));
  const grid = el("div", "grid2");
  for (const c of allCharts) grid.appendChild(chartCard(c));
  app.appendChild(grid);
}

// fault sweep (legacy BENCH_fault.json): exact rep-0 counters
if (DATA.fault && Array.isArray(DATA.fault.points) && DATA.fault.points.length) {
  app.appendChild(el("h2", "", "Fault sweep — response vs failed disks (replication 0)"));
  const series = new Map();
  for (const p of DATA.fault.points) {
    if (!series.has(p.algorithm)) series.set(p.algorithm, []);
    series.get(p.algorithm).push({ x: p.failed_disks, y: p.mean_response_s, ci: 0 });
  }
  for (const sp of series.values()) sp.sort((a, b) => a.x - b.x);
  const grid = el("div", "grid2");
  grid.appendChild(chartCard({ bench: "fault_sweep", metric: "mean_response_s",
    facet: "", xKey: "failed", series }));
  app.appendChild(grid);
}

// hot-path tiles
if (DATA.hotpath) {
  app.appendChild(el("h2", "", "Hot path — node read/decode medians (ns)"));
  const tiles = el("div", "tiles");
  for (const k of ["decode_leaf_ns", "decode_internal_ns",
                   "warm_traversal_ns_per_node", "knn_warm_ns_per_query"]) {
    if (DATA.hotpath[k] === undefined) continue;
    const t = el("div", "tile");
    t.appendChild(el("div", "lbl", k));
    t.appendChild(el("div", "val", fmt(DATA.hotpath[k])));
    tiles.appendChild(t);
  }
  app.appendChild(tiles);
}

// query introspection: predicted vs observed per-query work, device
// calibration fitted from the replayed trace
if (DATA.explain && Array.isArray(DATA.explain.points) && DATA.explain.points.length) {
  app.appendChild(el("h2", "", "Query introspection — analytical model vs observed execution"));
  if (DATA.explain.calibration) {
    const c = DATA.explain.calibration;
    const tiles = el("div", "tiles");
    for (const [lbl, v] of [["calibrated seek (ms)", c.mean_seek_s * 1e3],
                            ["calibrated rotation (ms)", c.mean_rotation_s * 1e3],
                            ["fixed service (ms)", c.fixed_s * 1e3],
                            ["calibration samples", c.samples]]) {
      const t = el("div", "tile");
      t.appendChild(el("div", "lbl", lbl));
      t.appendChild(el("div", "val", fmt(v)));
      tiles.appendChild(t);
    }
    app.appendChild(tiles);
  }
  const acc = new Map([["predicted", []], ["observed", []]]);
  const resid = new Map([["abs residual", []]]);
  for (const p of DATA.explain.points) {
    acc.get("predicted").push({ x: p.k, y: p.predicted_accesses, ci: 0 });
    acc.get("observed").push({ x: p.k, y: p.observed_accesses, ci: 0 });
    resid.get("abs residual").push({ x: p.k, y: p.mean_abs_residual_accesses, ci: 0 });
  }
  for (const m of [acc, resid]) for (const sp of m.values()) sp.sort((a, b) => a.x - b.x);
  const grid = el("div", "grid2");
  grid.appendChild(chartCard({ bench: "bench_explain", metric: "node_accesses",
    facet: "", xKey: "k", series: acc }));
  grid.appendChild(chartCard({ bench: "bench_explain", metric: "abs_residual_accesses",
    facet: "", xKey: "k", series: resid }));
  app.appendChild(grid);
}

// provenance: one row per manifest
const manifestNames = Object.keys(DATA.manifests || {}).sort();
if (manifestNames.length) {
  app.appendChild(el("h2", "", "Provenance — run manifests"));
  const card = el("div", "card");
  const tbl = el("table");
  const head = el("tr");
  for (const h of ["bench", "git sha", "master seed", "reps", "warm-up", "wall (s)", "parameters"])
    head.appendChild(el("th", "", h));
  tbl.appendChild(head);
  for (const name of manifestNames) {
    const m = DATA.manifests[name];
    const tr = el("tr");
    tr.appendChild(el("td", "", m.bench || name));
    tr.appendChild(el("td", "mono", (m.git_sha || "").slice(0, 12)));
    tr.appendChild(el("td", "", String(m.master_seed ?? "")));
    tr.appendChild(el("td", "", String(m.reps ?? "")));
    tr.appendChild(el("td", "", String(m.warmup_fraction ?? "")));
    tr.appendChild(el("td", "", m.wall_s !== undefined ? fmt(m.wall_s) : ""));
    const params = m.params ? Object.entries(m.params).map(([k, v]) => `${k}=${v}`).join(" ") : "";
    tr.appendChild(el("td", "mono", params));
    tbl.appendChild(tr);
  }
  card.appendChild(tbl);
  app.appendChild(card);
}

// raw CSV tables, collapsed — the no-hover, no-JS-knowledge data path
if (Array.isArray(DATA.csvs) && DATA.csvs.length) {
  app.appendChild(el("h2", "", "Result tables"));
  for (const c of DATA.csvs) {
    const det = el("details");
    det.appendChild(el("summary", "", c.name + ".csv"));
    const tbl = el("table");
    const head = el("tr");
    for (const h of c.columns) head.appendChild(el("th", "", h));
    tbl.appendChild(head);
    for (const row of c.rows) {
      const tr = el("tr");
      for (const cell of row) tr.appendChild(el("td", "", cell));
      tbl.appendChild(tr);
    }
    det.appendChild(tbl);
    app.appendChild(det);
  }
}
if (!allCharts.length && !manifestNames.length && !(DATA.csvs || []).length) {
  app.appendChild(el("p", "empty", "No results found in this directory."));
}
</script>
</body>
</html>
"##;

#[cfg(test)]
mod tests {
    use super::*;

    /// A canned 2-disk run: one CSV, one fragment, one manifest — enough
    /// to exercise every branch of the data-block builder.
    fn write_fixture(dir: &Path) {
        std::fs::create_dir_all(dir.join("bench")).expect("mkdir");
        std::fs::write(
            dir.join("fig99_demo.csv"),
            "k,BBSS,CRSS\n1,0.10,0.05\n10,0.20,0.08\n",
        )
        .expect("csv");
        std::fs::write(
            dir.join("bench/fig99_demo.json"),
            "{\"schema\":2,\"bench\":\"fig99_demo\",\"quick\":true,\"reps\":2,\
             \"warmup_fraction\":0,\"master_seed\":7,\"rep_seeds\":[7,11],\
             \"rng_fingerprint\":\"deadbeefdeadbeef\",\"metrics\":[\
             {\"name\":\"mean_response_s\",\"labels\":{\"disks\":\"2\",\
             \"k\":\"1\",\"algorithm\":\"CRSS\"},\"direction\":\"lower\",\
             \"count\":2,\"mean\":0.05,\"std_dev\":0.01,\"ci95\":0.0139,\
             \"min\":0.04,\"max\":0.06}]}\n",
        )
        .expect("fragment");
        std::fs::write(
            dir.join("fig99_demo.manifest.json"),
            "{\"bench\":\"fig99_demo\",\"git_sha\":\"0123456789ab\",\
             \"crate_version\":\"offline\",\"master_seed\":7,\"rep_seeds\":[7,11],\
             \"reps\":2,\"warmup_fraction\":0,\"params\":{\"disks\":\"2\",\"k\":\"1\"},\
             \"wall_s\":0.25,\"created_unix\":1700000000}\n",
        )
        .expect("manifest");
    }

    /// Golden pin of the embedded JSON data block for the fixed 2-disk
    /// fixture. If this breaks, the dashboard's data contract changed —
    /// update the golden only for a deliberate schema change.
    #[test]
    fn data_block_is_pinned_for_fixed_two_disk_run() {
        let dir = std::env::temp_dir().join("sqda_report_golden");
        let _ = std::fs::remove_dir_all(&dir);
        write_fixture(&dir);
        let data = build_data_json(&dir).expect("data block");
        let golden = format!(
            "{{\"results_dir\":\"{}\",\"summary\":null,\
             \"fragments\":{{\"fig99_demo\":{{\"schema\":2,\"bench\":\"fig99_demo\",\
             \"quick\":true,\"reps\":2,\"warmup_fraction\":0,\"master_seed\":7,\
             \"rep_seeds\":[7,11],\"rng_fingerprint\":\"deadbeefdeadbeef\",\
             \"metrics\":[{{\"name\":\"mean_response_s\",\"labels\":{{\"disks\":\"2\",\
             \"k\":\"1\",\"algorithm\":\"CRSS\"}},\"direction\":\"lower\",\"count\":2,\
             \"mean\":0.05,\"std_dev\":0.01,\"ci95\":0.0139,\"min\":0.04,\"max\":0.06}}]}}}},\
             \"manifests\":{{\"fig99_demo\":{{\"bench\":\"fig99_demo\",\
             \"git_sha\":\"0123456789ab\",\"crate_version\":\"offline\",\"master_seed\":7,\
             \"rep_seeds\":[7,11],\"reps\":2,\"warmup_fraction\":0,\
             \"params\":{{\"disks\":\"2\",\"k\":\"1\"}},\"wall_s\":0.25,\
             \"created_unix\":1700000000}}}},\
             \"csvs\":[{{\"name\":\"fig99_demo\",\"columns\":[\"k\",\"BBSS\",\"CRSS\"],\
             \"rows\":[[\"1\",\"0.10\",\"0.05\"],[\"10\",\"0.20\",\"0.08\"]]}}],\
             \"fault\":null,\"hotpath\":null,\"explain\":null}}",
            dir.display()
        );
        assert_eq!(data, golden);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn html_embeds_data_block_and_escapes_script_closers() {
        let html = render_html("{\"x\":\"</script><b>\"}");
        assert!(html.contains("id=\"sqda-data\""));
        assert!(!html.contains("</script><b>"), "unescaped closer");
        assert!(html.contains("<\\/script><b>"));
        // The block must round-trip as the page's JS would read it.
        let start = html.find("type=\"application/json\">").expect("block") + 24;
        let end = html[start..].find("</script>").expect("close") + start;
        let embedded = &html[start..end];
        assert_eq!(embedded.replace("<\\/", "</"), "{\"x\":\"</script><b>\"}");
    }

    #[test]
    fn missing_results_dir_is_an_error() {
        let args = Args::parse(
            ["report", "--results-dir", "/nonexistent/sqda-results"]
                .iter()
                .map(|s| s.to_string()),
            &[],
        )
        .expect("parse");
        assert!(report(&args).is_err());
    }

    #[test]
    fn csv_rows_survive_ragged_cells() {
        let json = csv_to_json("t", "a,b\n1,2\nx,y,z\n");
        assert!(json.contains("[\"x\",\"y\",\"z\"]"), "{json}");
    }
}
