//! The `tree.meta` sidecar file: everything needed to reopen a persisted
//! tree (the `FileStore` superblock holds page placements; this file
//! holds the tree-level metadata).

use std::path::Path;

/// Tree metadata persisted next to the store files.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeMeta {
    /// Root page id (raw).
    pub root: u64,
    /// Dimensionality.
    pub dim: usize,
    /// Page size in bytes.
    pub page_size: usize,
    /// Declustering heuristic name (for display; reopening uses PI for
    /// future splits unless overridden).
    pub decluster: String,
}

impl TreeMeta {
    /// Writes the sidecar as simple `key=value` lines.
    pub fn save(&self, store_dir: &Path) -> std::io::Result<()> {
        let body = format!(
            "root={}\ndim={}\npage_size={}\ndecluster={}\n",
            self.root, self.dim, self.page_size, self.decluster
        );
        std::fs::write(store_dir.join("tree.meta"), body)
    }

    /// Reads the sidecar.
    pub fn load(store_dir: &Path) -> std::io::Result<Self> {
        let body = std::fs::read_to_string(store_dir.join("tree.meta"))?;
        let mut root = None;
        let mut dim = None;
        let mut page_size = None;
        let mut decluster = String::from("proximity-index");
        for line in body.lines() {
            let Some((k, v)) = line.split_once('=') else {
                continue;
            };
            match k {
                "root" => root = v.parse().ok(),
                "dim" => dim = v.parse().ok(),
                "page_size" => page_size = v.parse().ok(),
                "decluster" => decluster = v.to_string(),
                _ => {}
            }
        }
        let missing =
            |what: &str| std::io::Error::new(std::io::ErrorKind::InvalidData, what.to_string());
        Ok(Self {
            root: root.ok_or_else(|| missing("tree.meta: missing root"))?,
            dim: dim.ok_or_else(|| missing("tree.meta: missing dim"))?,
            page_size: page_size.ok_or_else(|| missing("tree.meta: missing page_size"))?,
            decluster,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let dir = std::env::temp_dir().join(format!("sqda-meta-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let m = TreeMeta {
            root: 42,
            dim: 5,
            page_size: 2048,
            decluster: "round-robin".into(),
        };
        m.save(&dir).unwrap();
        assert_eq!(TreeMeta::load(&dir).unwrap(), m);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_incomplete() {
        let dir = std::env::temp_dir().join(format!("sqda-meta-bad-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("tree.meta"), "dim=2\n").unwrap();
        assert!(TreeMeta::load(&dir).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
