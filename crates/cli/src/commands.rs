//! The CLI command handlers.

use crate::args::{parse_point, Args};
use crate::meta::TreeMeta;
use sqda_analysis::{predict_knn, DeviceCalibration, TreeProfile};
use sqda_core::{exec::run_query, AlgorithmKind, RealTimeEngine, Simulation, Workload};
use sqda_datasets::Dataset;
use sqda_geom::Point;
use sqda_obs::{metrics_document, trace_document, CollectingRecorder, Event, Prediction};
use sqda_rstar::decluster::{
    AreaBalance, DataBalance, Declusterer, ProximityIndex, RandomAssign, RoundRobin,
};
use sqda_rstar::{ExternalBuildOptions, Node, PointSource, RStarConfig, RStarTree, SplitPolicy};
use sqda_simkernel::{FaultPlan, SimTime, SystemParams};
use sqda_storage::{FileStore, NodeCache, PageId, PageStore, ThreadedFileBackend};
use std::error::Error;
use std::path::Path;
use std::sync::Arc;

type CmdResult = Result<(), Box<dyn Error + Send + Sync>>;

fn declusterer_by_name(
    name: &str,
    seed: u64,
) -> Result<Box<dyn Declusterer>, Box<dyn Error + Send + Sync>> {
    Ok(match name {
        "pi" | "proximity-index" => Box::new(ProximityIndex),
        "rr" | "round-robin" => Box::new(RoundRobin::new()),
        "random" => Box::new(RandomAssign::new(seed)),
        "data" | "data-balance" => Box::new(DataBalance),
        "area" | "area-balance" => Box::new(AreaBalance),
        other => return Err(format!("unknown declusterer {other:?}").into()),
    })
}

fn split_by_name(name: &str) -> Result<SplitPolicy, Box<dyn Error + Send + Sync>> {
    Ok(match name {
        "rstar" => SplitPolicy::RStar,
        "quadratic" => SplitPolicy::GuttmanQuadratic,
        "linear" => SplitPolicy::GuttmanLinear,
        other => return Err(format!("unknown split policy {other:?}").into()),
    })
}

pub(crate) fn algo_by_name(name: &str) -> Result<AlgorithmKind, Box<dyn Error + Send + Sync>> {
    Ok(match name.to_ascii_lowercase().as_str() {
        "bbss" => AlgorithmKind::Bbss,
        "fpss" => AlgorithmKind::Fpss,
        "crss" => AlgorithmKind::Crss,
        "woptss" => AlgorithmKind::Woptss,
        other => return Err(format!("unknown algorithm {other:?}").into()),
    })
}

/// Loads `calibration.json` beside the store (unless `--uncalibrated`)
/// and applies it to the paper-default parameters, so analytical
/// commands predict with the service terms a previous `sqda serve` run
/// measured. A malformed file is reported and ignored.
pub(crate) fn calibrated_params(
    store_dir: &str,
    num_disks: u32,
    args: &Args,
) -> (SystemParams, Option<DeviceCalibration>) {
    let base = SystemParams::with_disks(num_disks);
    if args.flag("uncalibrated") {
        return (base, None);
    }
    let path = DeviceCalibration::path_for(Path::new(store_dir));
    if !path.exists() {
        return (base, None);
    }
    match DeviceCalibration::load(&path) {
        Ok(cal) => {
            let params = cal.apply(&base);
            (params, Some(cal))
        }
        Err(e) => {
            eprintln!("warning: ignoring calibration: {e}");
            (base, None)
        }
    }
}

pub(crate) fn open_tree(
    store_dir: &str,
) -> Result<(RStarTree<FileStore>, TreeMeta), Box<dyn Error + Send + Sync>> {
    let dir = Path::new(store_dir);
    let meta = TreeMeta::load(dir)?;
    let store = Arc::new(FileStore::open(dir)?);
    let tree = RStarTree::attach(
        store,
        RStarConfig::with_page_size(meta.dim, meta.page_size),
        Box::new(ProximityIndex),
        PageId::from_raw(meta.root),
    )?;
    Ok((tree, meta))
}

/// `sqda generate`
pub fn generate(args: &Args) -> CmdResult {
    let kind = args.required("kind")?.to_string();
    let n: usize = args.required_parsed("n")?;
    let dim: usize = args.get_or("dim", 2)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let out = args.required("out")?.to_string();
    let dataset = match kind.as_str() {
        "uniform" => sqda_datasets::uniform(n, dim, seed),
        "gaussian" => sqda_datasets::gaussian(n, dim, seed),
        "california" => sqda_datasets::california_like(n, seed),
        "longbeach" => sqda_datasets::long_beach_like(n, seed),
        other => return Err(format!("unknown dataset kind {other:?}").into()),
    };
    dataset.write_csv(Path::new(&out))?;
    println!(
        "wrote {} {}-d points ({}) to {out}",
        dataset.len(),
        dataset.dim,
        dataset.name
    );
    Ok(())
}

/// A [`PointSource`] that re-reads a CSV file on every pass, so the
/// external builder never materializes the dataset: resident memory is
/// one line buffer plus the builder's bounded sort runs. Object ids are
/// the zero-based line positions, matching the in-memory build.
///
/// Construction scans the file once for the cardinality and the
/// dimensionality of the first row. A row that fails to parse during a
/// later pass is skipped, which the builder then reports as a typed
/// point-count mismatch.
struct CsvSource {
    path: std::path::PathBuf,
    len: u64,
    dim: usize,
}

impl CsvSource {
    fn scan(path: &Path) -> Result<Self, Box<dyn Error + Send + Sync>> {
        use std::io::BufRead;
        let reader = std::io::BufReader::new(std::fs::File::open(path)?);
        let mut len = 0u64;
        let mut dim = 0usize;
        for line in reader.lines() {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            if dim == 0 {
                dim = line.split(',').count();
            }
            len += 1;
        }
        Ok(CsvSource {
            path: path.to_path_buf(),
            len,
            dim,
        })
    }
}

impl PointSource for CsvSource {
    fn len(&self) -> u64 {
        self.len
    }

    fn dim(&self) -> usize {
        self.dim
    }

    fn iter(&self) -> Box<dyn Iterator<Item = (Point, u64)> + '_> {
        use std::io::BufRead;
        let file = std::fs::File::open(&self.path).expect("CSV input vanished between passes");
        let lines = std::io::BufReader::new(file).lines();
        Box::new(
            lines
                .map_while(|line| line.ok())
                .filter(|line| !line.trim().is_empty())
                .filter_map(|line| {
                    let coords: Result<Vec<f64>, _> =
                        line.split(',').map(|s| s.trim().parse::<f64>()).collect();
                    coords.ok().map(Point::new)
                })
                .enumerate()
                .map(|(i, p)| (p, i as u64)),
        )
    }
}

/// `sqda build`
pub fn build(args: &Args) -> CmdResult {
    let input = args.required("input")?.to_string();
    let store_dir = args.required("store")?.to_string();
    let disks: u32 = args.get_or("disks", 10)?;
    let page_size: usize = args.get_or("page-size", 4096)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let decluster_name = args.get("decluster").unwrap_or("pi").to_string();
    let split = split_by_name(args.get("split").unwrap_or("rstar"))?;
    let bulk = args.flag("bulk");
    let external = args.flag("external");
    let run_capacity: usize = args.get_or("run-capacity", 1 << 18)?;
    let jobs: usize = args.get_or("jobs", 1)?;

    let declusterer = declusterer_by_name(&decluster_name, seed)?;
    let start = std::time::Instant::now();
    let (tree, dim, kind) = if external {
        // Out-of-core build: stream the CSV per pass, spill bounded sort
        // runs through a scratch store that lives (and dies) next to the
        // destination directory.
        let source = CsvSource::scan(Path::new(&input))?;
        if source.is_empty() {
            return Err("input dataset is empty".into());
        }
        let store = Arc::new(FileStore::create(
            Path::new(&store_dir),
            disks,
            1449,
            page_size,
            seed,
        )?);
        let config = RStarConfig::with_page_size(source.dim(), page_size).with_split_policy(split);
        let scratch_dir = Path::new(&store_dir).join("scratch");
        let scratch = Arc::new(FileStore::create(
            &scratch_dir,
            disks,
            1449,
            page_size,
            seed,
        )?);
        let opts = ExternalBuildOptions {
            run_capacity,
            jobs,
            ..ExternalBuildOptions::default()
        };
        let (tree, report) = RStarTree::bulk_load_external_stats(
            store.clone(),
            config,
            declusterer,
            &source,
            &scratch,
            &opts,
        )?;
        drop(scratch);
        std::fs::remove_dir_all(&scratch_dir)?;
        store.sync()?;
        println!(
            "external build: {} runs, {} merge passes, {} pages spilled (peak {} resident)",
            report.runs, report.merge_passes, report.spilled_pages, report.peak_scratch_pages
        );
        (tree, source.dim(), "external bulk-loaded")
    } else {
        let dataset = Dataset::read_csv("input", Path::new(&input))?;
        if dataset.is_empty() {
            return Err("input dataset is empty".into());
        }
        let store = Arc::new(FileStore::create(
            Path::new(&store_dir),
            disks,
            1449,
            page_size,
            seed,
        )?);
        let config = RStarConfig::with_page_size(dataset.dim, page_size).with_split_policy(split);
        let tree = if bulk {
            RStarTree::bulk_load(
                store.clone(),
                config,
                declusterer,
                dataset
                    .points
                    .iter()
                    .cloned()
                    .enumerate()
                    .map(|(i, p)| (p, i as u64))
                    .collect(),
            )?
        } else {
            let mut tree = RStarTree::create(store.clone(), config, declusterer)?;
            for (i, p) in dataset.points.iter().enumerate() {
                tree.insert(p.clone(), i as u64)?;
            }
            tree
        };
        store.sync()?;
        (
            tree,
            dataset.dim,
            if bulk { "bulk-loaded" } else { "incremental" },
        )
    };
    TreeMeta {
        root: tree.root_page().as_raw(),
        dim,
        page_size,
        decluster: decluster_name,
    }
    .save(Path::new(&store_dir))?;
    let stats = tree.stats()?;
    println!(
        "built {} tree: {} objects, height {}, {} nodes, avg fill {:.2}, {} disks, in {:.1?}",
        kind,
        tree.num_objects(),
        tree.height(),
        stats.total_nodes(),
        stats.avg_fill,
        disks,
        start.elapsed()
    );
    Ok(())
}

/// Writes the `--trace` / `--metrics` sinks shared by `query` and
/// `simulate`: the trace file is Chrome/Perfetto `trace_event` JSON
/// (raw JSONL event log instead when the path ends in `.jsonl`), the
/// metrics file a JSON document with the [`MetricsSnapshot`] and the
/// per-query [`sqda_obs::QueryProfile`]s.
fn write_observability(
    events: &[(u64, Event)],
    num_disks: u32,
    num_cpus: u32,
    io: &sqda_storage::IoStats,
    trace: Option<&str>,
    metrics: Option<&str>,
) -> CmdResult {
    if let Some(path) = trace {
        let body = trace_document(Path::new(path), events, num_disks, num_cpus);
        std::fs::write(path, body)?;
        println!("trace written    : {path} ({} events)", events.len());
    }
    if let Some(path) = metrics {
        std::fs::write(path, metrics_document(events, Some(io)))?;
        println!("metrics written  : {path}");
    }
    Ok(())
}

/// `sqda query`
pub fn query(args: &Args) -> CmdResult {
    let (tree, _) = open_tree(args.required("store")?)?;
    let coords = parse_point(args.required("point")?)?;
    let k: usize = args.get_or("k", 10)?;
    let kind = algo_by_name(args.get("algo").unwrap_or("crss"))?;
    let trace = args.get("trace").map(str::to_string);
    let metrics = args.get("metrics").map(str::to_string);
    let point = Point::try_new(coords)?;
    let mut algo = kind.build(&tree, point.clone(), k)?;
    let run = run_query(&tree, algo.as_mut())?;
    println!(
        "{} found {} neighbours in {} node reads ({} batches, max batch {}):",
        kind.name(),
        run.results.len(),
        run.nodes_visited,
        run.batches,
        run.max_batch
    );
    for n in &run.results {
        println!("  {}  {}  distance {:.6}", n.object, n.point, n.dist());
    }
    if trace.is_some() || metrics.is_some() {
        // Re-run the query as a single-user simulation on the modelled
        // array so the trace carries the full timing breakdown.
        let params = SystemParams::with_disks(tree.store().num_disks());
        let (num_disks, num_cpus) = (params.num_disks, params.num_cpus);
        let workload = Workload::single(point, k);
        let seed: u64 = args.get_or("seed", 0)?;
        let mut recorder = CollectingRecorder::default();
        let report =
            Simulation::new(&tree, params)?.run_recorded(kind, &workload, seed, &mut recorder)?;
        println!("simulated latency: {:.4} s", report.mean_response_s);
        write_observability(
            recorder.events(),
            num_disks,
            num_cpus,
            &tree.io_stats(),
            trace.as_deref(),
            metrics.as_deref(),
        )?;
    }
    Ok(())
}

/// `sqda range`
pub fn range(args: &Args) -> CmdResult {
    let (tree, _) = open_tree(args.required("store")?)?;
    let coords = parse_point(args.required("point")?)?;
    let radius: f64 = args.required_parsed("radius")?;
    let point = Point::try_new(coords)?;
    let hits = tree.range_query(&point, radius)?;
    println!("{} objects within {radius} of {point}:", hits.len());
    for e in hits.iter().take(20) {
        println!("  {}  {}", e.object, e.point);
    }
    if hits.len() > 20 {
        println!("  ... and {} more", hits.len() - 20);
    }
    Ok(())
}

/// `sqda stats`
pub fn stats(args: &Args) -> CmdResult {
    let (tree, meta) = open_tree(args.required("store")?)?;
    let stats = tree.stats()?;
    println!("dimensionality : {}", tree.dim());
    println!("objects        : {}", tree.num_objects());
    println!("height         : {}", stats.height);
    println!("nodes          : {}", stats.total_nodes());
    println!("nodes per level: {:?}", stats.nodes_per_level);
    println!("avg fill       : {:.3}", stats.avg_fill);
    println!("pages per disk : {:?}", stats.pages_per_disk);
    println!("page size      : {}", meta.page_size);
    println!("declusterer    : {}", meta.decluster);
    match tree.validate()? {
        Ok(()) => println!("invariants     : OK"),
        Err(e) => println!("invariants     : VIOLATED — {e}"),
    }
    Ok(())
}

/// `sqda simulate`
pub fn simulate(args: &Args) -> CmdResult {
    let store_dir = args.required("store")?.to_string();
    let (tree, _) = open_tree(&store_dir)?;
    let k: usize = args.get_or("k", 10)?;
    let lambda: f64 = args.get_or("lambda", 5.0)?;
    let num_queries: usize = args.get_or("queries", 100)?;
    let seed: u64 = args.get_or("seed", 0)?;
    let kind = algo_by_name(args.get("algo").unwrap_or("crss"))?;
    let (base, calibration) = calibrated_params(&store_dir, tree.store().num_disks(), args);
    if let Some(cal) = &calibration {
        println!(
            "calibration      : {} samples ({})",
            cal.samples, cal.source
        );
    }
    let params = SystemParams {
        mirrored_reads: args.flag("mirrored"),
        num_cpus: args.get_or("cpus", 1)?,
        ..base
    };
    let trace = args.get("trace").map(str::to_string);
    let metrics = args.get("metrics").map(str::to_string);
    let (num_disks, num_cpus) = (params.num_disks, params.num_cpus);
    // Fault injection: --fail-disks picks that many distinct disks
    // (seed-driven) and fail-stops them at --fail-at seconds. With 0
    // the plan is empty and the run is byte-identical to fault-free.
    let fail_disks: usize = args.get_or("fail-disks", 0)?;
    let fail_at: f64 = args.get_or("fail-at", 0.0)?;
    if fail_disks > num_disks as usize {
        return Err(
            format!("--fail-disks {fail_disks} exceeds the array's {num_disks} disks").into(),
        );
    }
    if !fail_at.is_finite() || fail_at < 0.0 {
        return Err(format!("--fail-at must be a non-negative time, got {fail_at}").into());
    }
    let plan = FaultPlan::fail_disks(
        fail_disks,
        SimTime::from_secs_f64(fail_at),
        num_disks,
        seed ^ 0xFA17,
    );
    let faulted = !plan.is_empty();
    if faulted && !params.mirrored_reads {
        eprintln!(
            "warning: injecting faults without --mirrored — failed disks \
             have no shadow replica, so every query touching them aborts"
        );
    }
    // Queries follow the data distribution: sample indexed points.
    let sample = sample_data_points(&tree, num_queries, seed)?;
    let workload = Workload::poisson(sample, k, lambda, seed ^ 0xABCD);
    let sim = Simulation::new(&tree, params)?;
    let mut recorder = CollectingRecorder::default();
    let report = if trace.is_some() || metrics.is_some() {
        sim.run_faulted_recorded(kind, &workload, seed ^ 0x1234, &plan, &mut recorder)?
    } else {
        sim.run_faulted(kind, &workload, seed ^ 0x1234, &plan)?
    };
    println!("algorithm        : {}", report.algorithm);
    println!("queries          : {}", report.completed);
    println!("mean response    : {:.4} s", report.mean_response_s);
    println!("p95 response     : {:.4} s", report.p95_response_s);
    println!("max response     : {:.4} s", report.max_response_s);
    println!("nodes per query  : {:.1}", report.mean_nodes_per_query);
    println!(
        "disk utilization : {:.1}%",
        report.mean_disk_utilization * 100.0
    );
    println!("bus utilization  : {:.1}%", report.bus_utilization * 100.0);
    println!("cpu utilization  : {:.1}%", report.cpu_utilization * 100.0);
    if faulted {
        println!(
            "failed disks     : {:?} at {fail_at} s",
            plan.failed_disks()
        );
        println!("degraded reads   : {}", report.degraded_reads);
        println!("read retries     : {}", report.read_retries);
        println!("aborted queries  : {}", report.failed);
        for (q, err) in report.failures.iter().take(5) {
            println!("  query {q}: {err}");
        }
        if report.failures.len() > 5 {
            println!("  ... and {} more", report.failures.len() - 5);
        }
    }
    if trace.is_some() || metrics.is_some() {
        write_observability(
            recorder.events(),
            num_disks,
            num_cpus,
            &tree.io_stats(),
            trace.as_deref(),
            metrics.as_deref(),
        )?;
    }
    Ok(())
}

/// `sqda estimate`
pub fn estimate(args: &Args) -> CmdResult {
    let store_dir = args.required("store")?.to_string();
    let (tree, _) = open_tree(&store_dir)?;
    let k: usize = args.get_or("k", 10)?;
    let lambda: f64 = args.get_or("lambda", 5.0)?;
    let profile = TreeProfile::measure(&tree)?;
    let (params, calibration) = calibrated_params(&store_dir, tree.store().num_disks(), args);
    let Some(p) = predict_knn(&profile, &params, tree.height(), k, lambda) else {
        return Err("degenerate data space; no analytical estimate".into());
    };
    if let Some(cal) = &calibration {
        println!(
            "calibration            : {} samples ({})",
            cal.samples, cal.source
        );
    }
    println!("expected node accesses : {:.1} (weak-optimal)", p.accesses);
    println!("assumed batches        : {:.1}", p.batches);
    println!("disk utilization ρ     : {:.3}", p.utilization);
    match p.response_s {
        Some(r) => println!("predicted response     : {r:.4} s"),
        None => println!("predicted response     : UNSTABLE (ρ ≥ 1)"),
    }
    Ok(())
}

/// `sqda explain` — run one k-NN query through the real-clock engine
/// with the introspection probe armed and print its [`sqda_obs::
/// QueryExplain`] record as one-line JSON: observed per-level node
/// accesses, batch sizes, threshold trajectory, per-disk reads, cache
/// split and timing breakdown next to the analytical prediction
/// (calibrated when the store carries a `calibration.json`) and the
/// observed-minus-predicted residuals.
pub fn explain(args: &Args) -> CmdResult {
    let store_dir = args.required("store")?.to_string();
    let (mut tree, _) = open_tree(&store_dir)?;
    let coords = parse_point(args.required("point")?)?;
    let k: usize = args.get_or("k", 10)?;
    let lambda: f64 = args.get_or("lambda", 1.0)?;
    let kind = algo_by_name(args.get("algo").unwrap_or("crss"))?;
    let cache: usize = args.get_or("cache", 4096)?;
    if cache > 0 {
        tree.set_node_cache(Arc::new(NodeCache::<Node>::new(cache)));
    }
    let point = Point::try_new(coords)?;
    if point.dim() != tree.dim() {
        return Err(format!("query dim {} but tree dim {}", point.dim(), tree.dim()).into());
    }
    let profile = TreeProfile::measure(&tree)?;
    let (params, calibration) = calibrated_params(&store_dir, tree.store().num_disks(), args);
    let predicted = predict_knn(&profile, &params, tree.height(), k, lambda).map(|p| Prediction {
        accesses: p.accesses,
        batches: p.batches,
        utilization: p.utilization,
        response_ms: p.response_s.map(|r| r * 1e3).unwrap_or(f64::INFINITY),
    });
    let backend = Arc::new(ThreadedFileBackend::new(Arc::clone(tree.store())));
    let engine = RealTimeEngine::new(&tree, backend)?;
    let (record, _) =
        engine.explain_query(kind, point, k, lambda, calibration.is_some(), predicted)?;
    println!("{}", record.to_json());
    Ok(())
}

/// Samples query points from the indexed data (window queries over random
/// leaf pages keep this O(sample) instead of a full scan).
fn sample_data_points<S: PageStore>(
    tree: &RStarTree<S>,
    n: usize,
    seed: u64,
) -> Result<Vec<Point>, Box<dyn Error + Send + Sync>> {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    // Walk random root-to-leaf paths.
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let mut page = tree.root_page();
        loop {
            let node = tree.read_node(page)?;
            if node.is_leaf() {
                if node.is_empty() {
                    return Err("tree is empty".into());
                }
                out.push(Point::from(node.leaf_point(rng.gen_range(0..node.len()))));
                break;
            }
            page = node.internal_child(rng.gen_range(0..node.len()));
        }
    }
    Ok(out)
}
