//! `sqda` — command-line interface to the similarity-query system.
//!
//! ```text
//! sqda generate --kind california --n 62173 --out places.csv
//! sqda build    --input places.csv --store ./mystore --disks 10
//! sqda query    --store ./mystore --point 0.42,0.37 --k 5 --algo crss
//! sqda range    --store ./mystore --point 0.42,0.37 --radius 0.01
//! sqda stats    --store ./mystore
//! sqda simulate --store ./mystore --k 10 --lambda 5 --queries 100
//! sqda estimate --store ./mystore --k 10 --lambda 5
//! sqda explain  --store ./mystore --point 0.42,0.37 --k 10
//! sqda serve    --store ./mystore --port 7878
//! sqda report   --results-dir results --out report.html
//! ```

mod args;
mod commands;
mod meta;
mod report;
mod serve;

use args::Args;

const HELP: &str = "\
sqda — similarity query processing using disk arrays

USAGE: sqda <command> [--option value ...]

COMMANDS:
  generate   synthesize a dataset CSV
             --kind uniform|gaussian|california|longbeach  --n <count>
             [--dim <d>=2] [--seed <s>=0] --out <file.csv>
  build      build a persistent declustered R*-tree from a CSV
             --input <file.csv> --store <dir> [--disks <n>=10]
             [--page-size <bytes>=4096] [--decluster pi|rr|random|data|area]
             [--split rstar|quadratic|linear] [--bulk] [--seed <s>=0]
             [--external [--run-capacity <pts>=262144] [--jobs <n>=1]]
  (--external streams the CSV through the out-of-core bulk builder:
   sort runs spill through a scratch store under <store>/scratch, RAM
   stays O(run-capacity x jobs) points regardless of input size.)
  query      k nearest neighbours
             --store <dir> --point <x,y,...> [--k <k>=10]
             [--algo bbss|fpss|crss|woptss=crss] [--seed <s>=0]
             [--trace <file>] [--metrics <file>]
  range      similarity range query
             --store <dir> --point <x,y,...> --radius <r>
  stats      tree statistics
             --store <dir>
  simulate   multi-user response-time simulation on the modelled array
             --store <dir> [--k <k>=10] [--lambda <q/s>=5]
             [--queries <n>=100] [--algo ...=crss] [--seed <s>=0]
             [--mirrored] [--cpus <n>=1]
             [--fail-disks <n>=0] [--fail-at <seconds>=0]
             [--trace <file>] [--metrics <file>]
  (--fail-disks injects seed-driven fail-stop faults: that many disks
   die at --fail-at; with --mirrored their reads degrade to the shadow
   partner, without it the touched queries abort with a typed error.)
  (--trace writes Chrome/Perfetto trace_event JSON — open at
   https://ui.perfetto.dev — or a raw JSONL event log if the path ends
   in .jsonl; --metrics writes a JSON metrics snapshot + per-query
   profiles.)
  estimate   analytical response-time prediction (no simulation)
             --store <dir> [--k <k>=10] [--lambda <q/s>=5]
             [--uncalibrated]
  explain    run one k-NN query and print a one-line JSON introspection
             record: observed per-level accesses, batches, threshold
             trajectory, per-disk reads, cache split and timings next
             to the analytical prediction and residuals
             --store <dir> --point <x,y,...> [--k <k>=10]
             [--algo bbss|fpss|crss|woptss=crss] [--lambda <q/s>=1]
             [--cache <pages>=4096] [--uncalibrated]
  (simulate / estimate / explain load <store>/calibration.json when
   present — fitted device service terms written by a prior serve run —
   unless --uncalibrated is given.)
  serve      answer k-NN queries over TCP with the real-clock engine
             --store <dir> [--port <p>=0 (0 = ephemeral)]
             [--backend file|inline=file] [--cache <pages>=4096]
             [--cache-bytes <bytes>=0 (overrides --cache: hard byte cap)]
             [--flight-cap <events>=0] [--slow-query-ms <ms>]
             [--slow-query-log <file.jsonl>] [--uncalibrated]
             [--trace <file>] [--metrics <file>]
  (line protocol, one reply per request line:
     QUERY <x,y,...> <k> [bbss|fpss|crss|woptss]  ->  OK <n> <id>:<dist>...
     EXPLAIN <x,y,...> <k> [algo] -> one-line JSON introspection record
     PING -> PONG   STATS -> counters   QUIT / SHUTDOWN -> BYE
     METRICS -> Prometheus text exposition, read until the '# EOF' line
     DUMP-TRACE <file> -> write the flight-recorder ring as a trace file)
  (--flight-cap arms a bounded in-memory ring of engine events for
   DUMP-TRACE; --slow-query-ms / --slow-query-log append a JSONL
   breakdown per query at or over the threshold; --trace implies a
   flight ring and writes it at shutdown, --metrics writes a JSON
   metrics snapshot at shutdown; at shutdown serve also refits device
   service terms from the live disk counters and writes
   <store>/calibration.json unless --uncalibrated.)
  report     render a results directory as a self-contained HTML dashboard
             (per-figure curves with 95% CI bands, fault-sweep and
             hot-path trends, run manifests, raw tables)
             [--results-dir <dir>=results] [--out <file>=report.html]
  help       this text
";

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.is_empty() || argv[0] == "help" || argv[0] == "--help" {
        print!("{HELP}");
        return;
    }
    let args = match Args::parse(argv, &["bulk", "mirrored", "external", "uncalibrated"]) {
        Ok(a) => a,
        Err(e) => fail(&e),
    };
    let result = match args.command.as_str() {
        "generate" => commands::generate(&args),
        "build" => commands::build(&args),
        "query" => commands::query(&args),
        "range" => commands::range(&args),
        "stats" => commands::stats(&args),
        "simulate" => commands::simulate(&args),
        "estimate" => commands::estimate(&args),
        "explain" => commands::explain(&args),
        "serve" => serve::serve(&args),
        "report" => report::report(&args),
        other => {
            eprintln!("unknown command {other:?}\n");
            print!("{HELP}");
            std::process::exit(2);
        }
    };
    let result = result.and_then(|()| args.finish().map_err(Into::into));
    if let Err(e) = result {
        fail(e.as_ref());
    }
}

fn fail(e: &dyn std::fmt::Display) -> ! {
    eprintln!("error: {e}");
    std::process::exit(1);
}
