//! `sqda serve` — a TCP front-end over the real-clock engine.
//!
//! The server opens a persisted [`FileStore`] tree once, wraps it in a
//! [`RealTimeEngine`] over a batched [`IoBackend`], and answers k-NN
//! queries from concurrent clients, one thread per connection. This is
//! the "real disks" end of the execution-backend seam: the very same
//! session machinery the simulator drives with a virtual clock here
//! runs against real files on the machine's clock.
//!
//! # Protocol
//!
//! Line-oriented, UTF-8, one request per line, one reply per request
//! (all replies are a single line except `METRICS`):
//!
//! ```text
//! -> QUERY <x,y,...> <k> [bbss|fpss|crss|woptss]
//! <- OK <n> <id>:<dist> <id>:<dist> ...
//! -> EXPLAIN <x,y,...> <k> [bbss|fpss|crss|woptss]
//! <- {"query":...,"observed_accesses":...,"predicted_accesses":...,...}
//!    (runs the query and returns its one-line JSON introspection
//!    record: observed per-level/per-disk work and timing next to the
//!    analytical prediction and the residuals)
//! -> BATCH <x,y;x,y;...> <k>   (B queries through one shared traversal)
//! <- OK <B> fetches=<unique>/<interest> rounds=<r> wall_us=<t>
//!          q0=<id>:<dist>,... q1=...
//! -> PING
//! <- PONG
//! -> STATS
//! <- STATS queries=<q> reads=<r> cache_hits=<h> cache_misses=<m>
//!          cache_hit_ratio=<x> degraded_reads=<d> window_qps=<qps>
//!          window_p50_ms=<p50> window_p99_ms=<p99> reads_per_disk=<a,b,...>
//!          resident_bytes=<b> byte_budget=<b>
//! -> METRICS       (Prometheus text exposition; read until the "# EOF" line)
//! <- # HELP sqda_queries_started_total ...
//!    ...
//!    # EOF
//! -> DUMP-TRACE <path>   (write the flight-recorder ring as a trace file)
//! <- OK trace events=<n> path=<path>
//! -> QUIT          (close this connection)
//! <- BYE
//! -> SHUTDOWN      (stop the whole server)
//! <- BYE
//! ```
//!
//! Any malformed request gets `ERR <detail>` and the connection stays
//! open. Distances are Euclidean, printed with six decimals.
//!
//! # Telemetry
//!
//! Every server carries a [`LiveTelemetry`] registry: the engine feeds
//! per-query component breakdowns and the I/O backend feeds per-disk
//! service times through the `ReadObserver` seam, all lock-free on the
//! query path. `--flight-cap` (or `--trace`) arms the bounded
//! flight-recorder ring that `DUMP-TRACE` and `--trace` export as a
//! Perfetto trace; `--slow-query-ms` / `--slow-query-log` append a JSONL
//! breakdown line for every query at or over the threshold.

use crate::args::{parse_point, Args};
use crate::commands::{algo_by_name, open_tree};
use sqda_analysis::{predict_knn, DeviceCalibration, DiskServiceModel, TreeProfile};
use sqda_core::{AlgorithmKind, RealTimeEngine, Workload};
use sqda_geom::Point;
use sqda_obs::{trace_document, LiveTelemetry, Prediction};
use sqda_rstar::{Node, RStarTree};
use sqda_simkernel::SystemParams;
use sqda_storage::{
    FileStore, InlineBackend, IoBackend, NodeCache, PageStore, ReadObserver, ThreadedFileBackend,
};
use std::error::Error;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

type CmdResult = Result<(), Box<dyn Error + Send + Sync>>;

/// Which [`IoBackend`] the server submits page reads through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Per-disk worker threads with positional reads ([`ThreadedFileBackend`]).
    File,
    /// Synchronous reads on the session thread ([`InlineBackend`]).
    Inline,
}

impl BackendKind {
    fn by_name(name: &str) -> Result<Self, Box<dyn Error + Send + Sync>> {
        match name {
            "file" | "threaded" => Ok(BackendKind::File),
            "inline" => Ok(BackendKind::Inline),
            other => Err(format!("unknown backend {other:?} (want file|inline)").into()),
        }
    }

    fn build(self, store: &Arc<FileStore>, observer: Arc<dyn ReadObserver>) -> Arc<dyn IoBackend> {
        match self {
            BackendKind::File => Arc::new(ThreadedFileBackend::with_observer(
                Arc::clone(store),
                observer,
            )),
            BackendKind::Inline => {
                Arc::new(InlineBackend::with_observer(Arc::clone(store), observer))
            }
        }
    }
}

/// Default flight-recorder ring capacity when `--trace` is given
/// without an explicit `--flight-cap`.
const DEFAULT_FLIGHT_CAP: usize = 65_536;

/// Default slow-query threshold when `--slow-query-log` is given
/// without an explicit `--slow-query-ms`.
const DEFAULT_SLOW_QUERY_MS: f64 = 100.0;

/// The analytical context behind the `EXPLAIN` verb: a tree profile
/// measured at store-open plus the (possibly calibrated) system
/// parameters, so every explained query carries a prediction next to
/// its observation.
pub struct ExplainContext {
    /// Geometry profile of the served tree; `None` when profiling
    /// failed (the verb then returns observations with null predictions).
    pub profile: Option<TreeProfile>,
    /// Parameters the model predicts with.
    pub params: SystemParams,
    /// Tree height in levels — the floor on predicted fetch rounds.
    pub height: u32,
    /// Whether `params` went through a [`DeviceCalibration`].
    pub calibrated: bool,
}

impl ExplainContext {
    /// Profiles `tree` (through its node cache; the reads are
    /// book-kept as `IoStats::profile_reads`) and predicts with
    /// `params` as-is.
    pub fn measure(tree: &RStarTree<FileStore>, params: SystemParams, calibrated: bool) -> Self {
        ExplainContext {
            profile: TreeProfile::measure(tree).ok(),
            params,
            height: tree.height(),
            calibrated,
        }
    }
}

/// `sqda serve`
pub fn serve(args: &Args) -> CmdResult {
    let store_dir = args.required("store")?.to_string();
    let port: u16 = args.get_or("port", 0)?;
    let backend = BackendKind::by_name(args.get("backend").unwrap_or("file"))?;
    let cache: usize = args.get_or("cache", 4096)?;
    let cache_bytes: usize = args.get_or("cache-bytes", 0)?;
    let trace_path = args.get("trace").map(|s| s.to_string());
    let metrics_path = args.get("metrics").map(|s| s.to_string());
    let flight_cap: usize = args.get_or(
        "flight-cap",
        if trace_path.is_some() {
            DEFAULT_FLIGHT_CAP
        } else {
            0
        },
    )?;
    let slow_ms: Option<f64> = match args.get("slow-query-ms") {
        None => None,
        Some(v) => Some(v.parse().map_err(|e| format!("bad --slow-query-ms: {e}"))?),
    };
    let slow_log_path = args.get("slow-query-log").map(|s| s.to_string());
    let uncalibrated = args.flag("uncalibrated");

    let (mut tree, meta) = open_tree(&store_dir)?;
    if cache_bytes > 0 {
        // Byte-budgeted mode: evict on resident bytes, not entry count,
        // so a fixed memory cap holds whatever the node fan-out is.
        tree.set_node_cache(Arc::new(NodeCache::<Node>::new_bytes(
            cache_bytes,
            Node::heap_bytes,
        )));
    } else if cache > 0 {
        tree.set_node_cache(Arc::new(NodeCache::<Node>::new(cache)));
    }
    let mut live = LiveTelemetry::new(tree.store().num_disks()).with_flight_recorder(flight_cap);
    if slow_ms.is_some() || slow_log_path.is_some() {
        let path = slow_log_path.unwrap_or_else(|| "slow-queries.jsonl".to_string());
        let threshold = slow_ms.unwrap_or(DEFAULT_SLOW_QUERY_MS);
        live = live.with_slow_query_log(Path::new(&path), threshold)?;
        println!("slow-query log: {path} (threshold {threshold} ms)");
    }
    let live = Arc::new(live);

    // The analytical plane: profile the tree once at open, and predict
    // with calibrated service terms when a previous run left a
    // `calibration.json` beside the store (disable with --uncalibrated).
    let base_params = SystemParams::with_disks(tree.store().num_disks());
    let calibration_path = DeviceCalibration::path_for(Path::new(&store_dir));
    let calibration = if uncalibrated || !calibration_path.exists() {
        None
    } else {
        match DeviceCalibration::load(&calibration_path) {
            Ok(cal) => {
                println!(
                    "calibration: {} ({} samples, {})",
                    calibration_path.display(),
                    cal.samples,
                    cal.source
                );
                Some(cal)
            }
            Err(e) => {
                eprintln!("warning: ignoring calibration: {e}");
                None
            }
        }
    };
    let params = calibration
        .as_ref()
        .map(|cal| cal.apply(&base_params))
        .unwrap_or_else(|| base_params.clone());
    let explain = ExplainContext::measure(&tree, params, calibration.is_some());

    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let addr = listener.local_addr()?;
    // The exact "listening on" line is the readiness handshake scripts
    // and the CI smoke job wait for; keep it first and flushed.
    println!("listening on {addr}");
    println!(
        "store {store_dir}: {} objects, dim {}, page size {}, {} disks, backend {}",
        tree.num_objects(),
        meta.dim,
        meta.page_size,
        tree.store().num_disks(),
        match backend {
            BackendKind::File => "file",
            BackendKind::Inline => "inline",
        }
    );
    std::io::stdout().flush()?;
    run_server(&tree, backend, listener, Arc::clone(&live), explain)?;

    // Refit the device calibration from what the run's disk workers
    // actually measured, so the next serve (and `sqda simulate` /
    // `sqda explain` against this store) predicts with observed service
    // times. Skipped when no reads were served.
    if !uncalibrated {
        let requests: u64 = live.disks().iter().map(|d| d.requests.get()).sum();
        let busy_ns: u64 = live.disks().iter().map(|d| d.busy_ns.get()).sum();
        let reference = DiskServiceModel::from_params(&base_params.disk);
        if let Some(cal) = DeviceCalibration::fit_from_totals(requests, busy_ns, &reference) {
            cal.save(&calibration_path)?;
            println!(
                "calibration written: {} ({} samples)",
                calibration_path.display(),
                cal.samples
            );
        } else {
            println!("calibration skipped: no backend reads observed (cache served everything)");
        }
    }

    // Shutdown sinks: drain what the live registry retained.
    if let Some(path) = &trace_path {
        let events = live.flight().map(|f| f.drain()).unwrap_or_default();
        std::fs::write(
            path,
            trace_document(Path::new(path), &events, live.num_disks(), 1),
        )?;
        println!("trace: {path} ({} events)", events.len());
    }
    if let Some(path) = &metrics_path {
        let mut snap = live.snapshot();
        snap.fold_io_stats(&tree.io_stats());
        std::fs::write(path, format!("{{\"snapshot\":{}}}\n", snap.to_json()))?;
        println!("metrics: {path}");
    }
    Ok(())
}

/// Accept loop: one handler thread per connection, shared engine. Returns
/// once a client sends `SHUTDOWN` and every handler has drained. The
/// `live` registry observes every query (engine side) and every page
/// read (backend side); the caller keeps its clone to drain trace and
/// metrics sinks after shutdown.
pub fn run_server(
    tree: &RStarTree<FileStore>,
    backend: BackendKind,
    listener: TcpListener,
    live: Arc<LiveTelemetry>,
    explain: ExplainContext,
) -> CmdResult {
    let observer: Arc<dyn ReadObserver> = Arc::clone(&live) as _;
    let engine =
        RealTimeEngine::new(tree, backend.build(tree.store(), observer))?.with_telemetry(live)?;
    let addr = listener.local_addr()?;
    let shutdown = AtomicBool::new(false);
    let served = AtomicU64::new(0);
    std::thread::scope(|s| -> CmdResult {
        for conn in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = conn?;
            let engine = &engine;
            let shutdown = &shutdown;
            let served = &served;
            let explain = &explain;
            s.spawn(move || handle_connection(stream, engine, explain, shutdown, served, addr));
        }
        Ok(())
    })
}

fn handle_connection(
    stream: TcpStream,
    engine: &RealTimeEngine<RStarTree<FileStore>>,
    explain: &ExplainContext,
    shutdown: &AtomicBool,
    served: &AtomicU64,
    addr: SocketAddr,
) {
    let Ok(reader) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    for line in BufReader::new(reader).lines() {
        let Ok(line) = line else { break };
        let request = line.trim();
        if request.is_empty() {
            continue;
        }
        let reply = respond(request, engine, explain, served);
        if writeln!(writer, "{}", reply.text)
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        match reply.control {
            Control::None => {}
            Control::Quit => break,
            Control::Shutdown => {
                shutdown.store(true, Ordering::SeqCst);
                // Unblock the accept loop so it observes the flag.
                let _ = TcpStream::connect(addr);
                break;
            }
        }
    }
}

enum Control {
    None,
    Quit,
    Shutdown,
}

struct Reply {
    text: String,
    control: Control,
}

impl Reply {
    fn line(text: String) -> Self {
        Reply {
            text,
            control: Control::None,
        }
    }
    fn err(detail: impl std::fmt::Display) -> Self {
        Reply::line(format!("ERR {detail}"))
    }
}

/// One protocol request → one reply line (plus connection control).
fn respond(
    request: &str,
    engine: &RealTimeEngine<RStarTree<FileStore>>,
    explain: &ExplainContext,
    served: &AtomicU64,
) -> Reply {
    let mut words = request.split_whitespace();
    match words.next() {
        Some("PING") => Reply::line("PONG".into()),
        Some("QUIT") => Reply {
            text: "BYE".into(),
            control: Control::Quit,
        },
        Some("SHUTDOWN") => Reply {
            text: "BYE".into(),
            control: Control::Shutdown,
        },
        Some("STATS") => {
            let io = engine.access_method().io_stats();
            // The first four fields are a wire contract (smoke scripts
            // parse the prefix); new telemetry only appends.
            let mut text = format!(
                "STATS queries={} reads={} cache_hits={} cache_misses={}",
                served.load(Ordering::Relaxed),
                io.reads,
                io.cache_hits,
                io.cache_misses
            );
            let lookups = io.cache_hits + io.cache_misses;
            let ratio = if lookups == 0 {
                0.0
            } else {
                io.cache_hits as f64 / lookups as f64
            };
            text.push_str(&format!(" cache_hit_ratio={ratio:.4}"));
            if let Some(live) = engine.telemetry() {
                let w = live.window_stats();
                text.push_str(&format!(
                    " degraded_reads={} window_qps={:.3} window_p50_ms={:.3} window_p99_ms={:.3}",
                    live.degraded_reads.get(),
                    w.qps,
                    w.p50_ms,
                    w.p99_ms
                ));
            }
            let per_disk: Vec<String> = io.reads_per_disk.iter().map(|r| r.to_string()).collect();
            text.push_str(&format!(" reads_per_disk={}", per_disk.join(",")));
            text.push_str(&format!(
                " resident_bytes={} byte_budget={}",
                io.cache_resident_bytes, io.cache_byte_budget
            ));
            Reply::line(text)
        }
        Some("METRICS") => {
            let Some(live) = engine.telemetry() else {
                return Reply::err("telemetry disabled");
            };
            if let Some(extra) = words.next() {
                return Reply::err(format!("unexpected trailing {extra:?}"));
            }
            let io = engine.access_method().io_stats();
            // Multi-line reply; the final "# EOF" line doubles as the
            // exposition-format terminator and the protocol terminator.
            Reply::line(live.prometheus(Some(&io)).trim_end().to_string())
        }
        Some("DUMP-TRACE") => {
            let Some(path) = words.next() else {
                return Reply::err("usage: DUMP-TRACE <path>");
            };
            if let Some(extra) = words.next() {
                return Reply::err(format!("unexpected trailing {extra:?}"));
            }
            let Some(live) = engine.telemetry() else {
                return Reply::err("telemetry disabled");
            };
            let Some(flight) = live.flight() else {
                return Reply::err("flight recorder disabled (serve --flight-cap <n>)");
            };
            let events = flight.drain();
            let doc = trace_document(Path::new(path), &events, live.num_disks(), 1);
            match std::fs::write(path, doc) {
                Ok(()) => Reply::line(format!("OK trace events={} path={path}", events.len())),
                Err(e) => Reply::err(format!("cannot write {path}: {e}")),
            }
        }
        Some("QUERY") => {
            let (Some(coords), Some(k)) = (words.next(), words.next()) else {
                return Reply::err("usage: QUERY <x,y,...> <k> [algo]");
            };
            let point = match parse_point(coords).map(Point::try_new) {
                Ok(Ok(p)) => p,
                Ok(Err(e)) => return Reply::err(e),
                Err(e) => return Reply::err(e),
            };
            let k: usize = match k.parse() {
                Ok(k) if k > 0 => k,
                _ => return Reply::err(format!("bad k {k:?}")),
            };
            let kind = match words.next() {
                None => AlgorithmKind::Crss,
                Some(name) => match algo_by_name(name) {
                    Ok(kind) => kind,
                    Err(e) => return Reply::err(e),
                },
            };
            if let Some(extra) = words.next() {
                return Reply::err(format!("unexpected trailing {extra:?}"));
            }
            if point.dim() != engine.access_method().dim() {
                return Reply::err(format!(
                    "query dim {} but tree dim {}",
                    point.dim(),
                    engine.access_method().dim()
                ));
            }
            match engine.run(kind, &Workload::single(point, k), 1) {
                Err(e) => Reply::err(e),
                Ok(report) => {
                    if let Some((_, e)) = report.failures.first() {
                        return Reply::err(e);
                    }
                    served.fetch_add(1, Ordering::Relaxed);
                    let answers = &report.answers[0];
                    let mut text = format!("OK {}", answers.len());
                    for n in answers {
                        text.push_str(&format!(" {}:{:.6}", n.object.0, n.dist()));
                    }
                    Reply::line(text)
                }
            }
        }
        Some("EXPLAIN") => {
            let (Some(coords), Some(k)) = (words.next(), words.next()) else {
                return Reply::err("usage: EXPLAIN <x,y,...> <k> [algo]");
            };
            let point = match parse_point(coords).map(Point::try_new) {
                Ok(Ok(p)) => p,
                Ok(Err(e)) => return Reply::err(e),
                Err(e) => return Reply::err(e),
            };
            let k: usize = match k.parse() {
                Ok(k) if k > 0 => k,
                _ => return Reply::err(format!("bad k {k:?}")),
            };
            let kind = match words.next() {
                None => AlgorithmKind::Crss,
                Some(name) => match algo_by_name(name) {
                    Ok(kind) => kind,
                    Err(e) => return Reply::err(e),
                },
            };
            if let Some(extra) = words.next() {
                return Reply::err(format!("unexpected trailing {extra:?}"));
            }
            if point.dim() != engine.access_method().dim() {
                return Reply::err(format!(
                    "query dim {} but tree dim {}",
                    point.dim(),
                    engine.access_method().dim()
                ));
            }
            // λ: the live windowed arrival rate, floored at one query
            // per second so an idle server still predicts finite waits.
            let lambda = engine
                .telemetry()
                .map(|l| l.window_stats().qps)
                .unwrap_or(0.0)
                .max(1.0);
            let predicted = explain.profile.as_ref().and_then(|profile| {
                predict_knn(profile, &explain.params, explain.height, k, lambda).map(|p| {
                    Prediction {
                        accesses: p.accesses,
                        batches: p.batches,
                        utilization: p.utilization,
                        response_ms: p.response_s.map(|r| r * 1e3).unwrap_or(f64::INFINITY),
                    }
                })
            });
            match engine.explain_query(kind, point, k, lambda, explain.calibrated, predicted) {
                Err(e) => Reply::err(e),
                Ok((record, _)) => {
                    served.fetch_add(1, Ordering::Relaxed);
                    Reply::line(record.to_json())
                }
            }
        }
        Some("BATCH") => {
            // B queries through one shared traversal (FPSS wavefront
            // semantics): each wavefront page is fetched and decoded
            // once for every query still interested in it.
            let (Some(coords), Some(k)) = (words.next(), words.next()) else {
                return Reply::err("usage: BATCH <x,y;x,y;...> <k>");
            };
            let mut queries = Vec::new();
            for part in coords.split(';') {
                match parse_point(part).map(Point::try_new) {
                    Ok(Ok(p)) => queries.push(p),
                    Ok(Err(e)) => return Reply::err(e),
                    Err(e) => return Reply::err(e),
                }
            }
            let k: usize = match k.parse() {
                Ok(k) if k > 0 => k,
                _ => return Reply::err(format!("bad k {k:?}")),
            };
            if let Some(extra) = words.next() {
                return Reply::err(format!("unexpected trailing {extra:?}"));
            }
            if let Some(p) = queries
                .iter()
                .find(|p| p.dim() != engine.access_method().dim())
            {
                return Reply::err(format!(
                    "query dim {} but tree dim {}",
                    p.dim(),
                    engine.access_method().dim()
                ));
            }
            match engine.run_query_batch(&queries, k) {
                Err(e) => Reply::err(e),
                Ok((report, wall_s)) => {
                    served.fetch_add(queries.len() as u64, Ordering::Relaxed);
                    let mut text = format!(
                        "OK {} fetches={}/{} rounds={} wall_us={:.1}",
                        report.answers.len(),
                        report.unique_fetches,
                        report.total_interest,
                        report.rounds,
                        wall_s * 1e6
                    );
                    for (qi, answers) in report.answers.iter().enumerate() {
                        text.push_str(&format!(" q{qi}="));
                        let items: Vec<String> = answers
                            .iter()
                            .map(|n| format!("{}:{:.6}", n.object.0, n.dist()))
                            .collect();
                        text.push_str(&items.join(","));
                    }
                    Reply::line(text)
                }
            }
        }
        Some(other) => Reply::err(format!("unknown request {other:?}")),
        None => Reply::err("empty request"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::TreeMeta;
    use sqda_rstar::decluster::ProximityIndex;
    use sqda_rstar::RStarConfig;
    use std::io::BufRead;
    use std::path::PathBuf;

    fn build_store(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sqda-serve-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(FileStore::create(&dir, 4, 100, 1024, 3).unwrap());
        let mut tree = RStarTree::create(
            store.clone(),
            RStarConfig::with_page_size(2, 1024),
            Box::new(ProximityIndex),
        )
        .unwrap();
        for i in 0..200u64 {
            tree.insert(Point::new(vec![(i % 19) as f64, (i % 13) as f64]), i)
                .unwrap();
        }
        store.sync().unwrap();
        TreeMeta {
            root: tree.root_page().as_raw(),
            dim: 2,
            page_size: 1024,
            decluster: "pi".into(),
        }
        .save(&dir)
        .unwrap();
        dir
    }

    fn test_context(tree: &RStarTree<FileStore>) -> ExplainContext {
        ExplainContext::measure(
            tree,
            SystemParams::with_disks(tree.store().num_disks()),
            false,
        )
    }

    fn request_line(
        stream: &mut TcpStream,
        reader: &mut BufReader<TcpStream>,
        req: &str,
    ) -> String {
        writeln!(stream, "{req}").unwrap();
        stream.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    }

    #[test]
    fn serves_queries_over_tcp_until_shutdown() {
        let dir = build_store("tcp");
        let (tree, _) = open_tree(dir.to_str().unwrap()).unwrap();
        let expected = tree.knn(&Point::new(vec![5.0, 5.0]), 3).unwrap();
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let live = Arc::new(LiveTelemetry::new(tree.store().num_disks()));
        std::thread::scope(|s| {
            let server = s.spawn(|| {
                run_server(
                    &tree,
                    BackendKind::File,
                    listener,
                    live.clone(),
                    test_context(&tree),
                )
            });

            let mut a = TcpStream::connect(addr).unwrap();
            let mut ra = BufReader::new(a.try_clone().unwrap());
            assert_eq!(request_line(&mut a, &mut ra, "PING"), "PONG");
            let ok = request_line(&mut a, &mut ra, "QUERY 5.0,5.0 3 crss");
            let words: Vec<&str> = ok.split_whitespace().collect();
            assert_eq!(words[0], "OK");
            assert_eq!(words[1], "3");
            for (w, n) in words[2..].iter().zip(&expected) {
                assert_eq!(
                    *w,
                    format!("{}:{:.6}", n.object.0, n.dist()),
                    "full reply: {ok}"
                );
            }
            // Malformed requests keep the connection alive.
            assert!(request_line(&mut a, &mut ra, "QUERY 1.0 2").starts_with("ERR"));
            assert!(request_line(&mut a, &mut ra, "QUERY 1.0,2.0 0").starts_with("ERR"));
            assert!(request_line(&mut a, &mut ra, "QUERY 1.0,2.0 2 zzz").starts_with("ERR"));
            assert!(request_line(&mut a, &mut ra, "NONSENSE").starts_with("ERR"));
            let stats = request_line(&mut a, &mut ra, "STATS");
            assert!(stats.starts_with("STATS queries=1 "), "{stats}");
            assert!(stats.contains(" cache_hit_ratio="), "{stats}");
            assert!(stats.contains(" degraded_reads=0 "), "{stats}");
            assert!(stats.contains(" window_qps="), "{stats}");
            assert!(stats.contains(" reads_per_disk="), "{stats}");
            // PR 9's byte-budget cache fields append after the per-disk
            // breakdown (zeros here: the test tree carries no cache).
            assert!(stats.contains(" resident_bytes=0"), "{stats}");
            assert!(stats.contains(" byte_budget=0"), "{stats}");

            // EXPLAIN runs the query and replies with its one-line JSON
            // introspection record: observed work and timing next to
            // the analytical prediction and the residuals.
            let reply = request_line(&mut a, &mut ra, "EXPLAIN 5.0,5.0 3 crss");
            assert!(reply.starts_with('{'), "{reply}");
            let doc = sqda_obs::json::parse(&reply).unwrap();
            assert_eq!(doc.get("algo").and_then(|v| v.as_str()), Some("CRSS"));
            assert_eq!(doc.get("k").and_then(|v| v.as_u64()), Some(3));
            let observed = doc
                .get("observed_accesses")
                .and_then(|v| v.as_u64())
                .unwrap();
            assert!(observed > 0, "{reply}");
            let predicted = doc
                .get("predicted_accesses")
                .and_then(|v| v.as_f64())
                .unwrap();
            assert!(predicted >= 1.0, "{reply}");
            let residual = doc
                .get("residual_accesses")
                .and_then(|v| v.as_f64())
                .unwrap();
            assert!((residual - (observed as f64 - predicted)).abs() < 1e-9, "{reply}");
            assert_eq!(
                doc.get("calibrated"),
                Some(&sqda_obs::json::Value::Bool(false))
            );
            assert!(doc.get("level_accesses").and_then(|v| v.as_arr()).is_some());
            assert!(request_line(&mut a, &mut ra, "EXPLAIN 1.0 2").starts_with("ERR"));
            assert!(request_line(&mut a, &mut ra, "EXPLAIN").starts_with("ERR"));

            // Shared-traversal batch: two queries through one descent;
            // q0's answers match the solo ground truth exactly.
            let batch = request_line(&mut a, &mut ra, "BATCH 5.0,5.0;1.0,2.0 3");
            assert!(batch.starts_with("OK 2 fetches="), "{batch}");
            assert!(batch.contains(" rounds="), "{batch}");
            let q0: Vec<String> = expected
                .iter()
                .map(|n| format!("{}:{:.6}", n.object.0, n.dist()))
                .collect();
            assert!(batch.contains(&format!(" q0={}", q0.join(","))), "{batch}");
            assert!(request_line(&mut a, &mut ra, "BATCH 1.0,2.0 0").starts_with("ERR"));
            assert!(request_line(&mut a, &mut ra, "BATCH 1.0 3").starts_with("ERR"));
            assert!(request_line(&mut a, &mut ra, "BATCH").starts_with("ERR"));

            // A second concurrent client.
            let mut b = TcpStream::connect(addr).unwrap();
            let mut rb = BufReader::new(b.try_clone().unwrap());
            assert!(request_line(&mut b, &mut rb, "QUERY 1.0,2.0 5").starts_with("OK 5 "));
            assert_eq!(request_line(&mut b, &mut rb, "QUIT"), "BYE");

            assert_eq!(request_line(&mut a, &mut ra, "SHUTDOWN"), "BYE");
            server.join().unwrap().unwrap();
        });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn batch_replies_identical_across_backends() {
        // The BATCH verb routes its wavefront reads through the engine's
        // I/O backend; completions arrive in finish order over the
        // threaded backend, request order inline. The replies must be
        // byte-identical either way (modulo the wall-clock field).
        let dir = build_store("batch-backends");
        let (tree, _) = open_tree(dir.to_str().unwrap()).unwrap();
        let strip_wall = |reply: &str| -> String {
            reply
                .split_whitespace()
                .filter(|w| !w.starts_with("wall_us="))
                .collect::<Vec<_>>()
                .join(" ")
        };
        let mut replies: Vec<Vec<String>> = Vec::new();
        for kind in [BackendKind::File, BackendKind::Inline] {
            let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
            let addr = listener.local_addr().unwrap();
            let live = Arc::new(LiveTelemetry::new(tree.store().num_disks()));
            std::thread::scope(|s| {
                let server = s.spawn(|| {
                    run_server(&tree, kind, listener, live.clone(), test_context(&tree))
                });
                let mut a = TcpStream::connect(addr).unwrap();
                let mut ra = BufReader::new(a.try_clone().unwrap());
                let mut lines = Vec::new();
                for req in [
                    "BATCH 5.0,5.0;1.0,2.0;18.0,12.0 4",
                    "BATCH 0.0,0.0;0.1,0.1;9.0,9.0;3.0,7.0 7",
                    "BATCH 5.0,5.0 1",
                ] {
                    let reply = request_line(&mut a, &mut ra, req);
                    assert!(reply.starts_with("OK "), "{reply}");
                    lines.push(strip_wall(&reply));
                }
                replies.push(lines);
                assert_eq!(request_line(&mut a, &mut ra, "SHUTDOWN"), "BYE");
                server.join().unwrap().unwrap();
            });
        }
        assert_eq!(
            replies[0], replies[1],
            "threaded and inline backends must answer BATCH identically"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Reads a multi-line `METRICS` reply up to and including the
    /// `# EOF` terminator line.
    fn request_metrics(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>) -> String {
        writeln!(stream, "METRICS").unwrap();
        stream.flush().unwrap();
        let mut text = String::new();
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let done = line.trim_end() == "# EOF";
            text.push_str(&line);
            if done {
                return text;
            }
        }
    }

    #[test]
    fn metrics_trace_and_slow_log_over_loopback() {
        let dir = build_store("metrics");
        let trace_path = dir.join("flight.json");
        let slow_path = dir.join("slow.jsonl");
        let (tree, _) = open_tree(dir.to_str().unwrap()).unwrap();
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        let live = Arc::new(
            LiveTelemetry::new(tree.store().num_disks())
                .with_flight_recorder(4096)
                // Threshold 0: every completed query is "slow".
                .with_slow_query_log(&slow_path, 0.0)
                .unwrap(),
        );
        std::thread::scope(|s| {
            let server = s.spawn(|| {
                run_server(
                    &tree,
                    BackendKind::File,
                    listener,
                    live.clone(),
                    test_context(&tree),
                )
            });

            let mut a = TcpStream::connect(addr).unwrap();
            let mut ra = BufReader::new(a.try_clone().unwrap());
            assert!(request_line(&mut a, &mut ra, "QUERY 5.0,5.0 3").starts_with("OK 3 "));
            assert!(request_line(&mut a, &mut ra, "QUERY 1.0,2.0 5").starts_with("OK 5 "));
            // An explained query feeds the drift windows and, at
            // threshold 0, writes an explain-enriched slow-log entry.
            assert!(request_line(&mut a, &mut ra, "EXPLAIN 5.0,5.0 3").starts_with('{'));

            // METRICS: a lint-clean Prometheus exposition over live data.
            let text = request_metrics(&mut a, &mut ra);
            let problems = sqda_obs::prometheus::lint(&text);
            assert!(problems.is_empty(), "exposition lint: {problems:?}");
            assert!(text.contains("sqda_queries_completed_total 3"), "{text}");
            assert!(text.contains("sqda_response_ms_count 3"), "{text}");
            assert!(text.contains("sqda_disk_reads_total{disk=\"0\"}"), "{text}");
            assert!(text.contains("sqda_cache_hits_total"), "{text}");
            assert!(text.contains("sqda_model_residual_accesses "), "{text}");
            assert!(text.contains("sqda_model_residual_latency "), "{text}");

            // The connection survives a multi-line reply.
            assert_eq!(request_line(&mut a, &mut ra, "PING"), "PONG");

            // DUMP-TRACE writes a Perfetto document from the flight ring.
            let reply = request_line(
                &mut a,
                &mut ra,
                &format!("DUMP-TRACE {}", trace_path.display()),
            );
            assert!(reply.starts_with("OK trace events="), "{reply}");
            assert!(!reply.starts_with("OK trace events=0 "), "{reply}");

            assert_eq!(request_line(&mut a, &mut ra, "SHUTDOWN"), "BYE");
            server.join().unwrap().unwrap();
        });
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        assert!(trace.starts_with("{\"traceEvents\":["), "{trace}");
        assert!(
            trace.contains("\"name\":\"query\""),
            "flight ring kept query spans: {trace}"
        );
        let slow = std::fs::read_to_string(&slow_path).unwrap();
        let lines: Vec<&str> = slow.lines().collect();
        assert_eq!(lines.len(), 3, "{slow}");
        let first = sqda_obs::json::parse(lines[0]).unwrap();
        assert_eq!(first.get("algo").and_then(|v| v.as_str()), Some("CRSS"));
        assert!(first.get("response_ms").and_then(|v| v.as_f64()).is_some());
        assert!(first.get("explain").is_none(), "{slow}");
        // The explained query's entry embeds its full introspection
        // record.
        let explained = sqda_obs::json::parse(lines[2]).unwrap();
        let record = explained.get("explain").expect("explain-enriched entry");
        assert!(
            record
                .get("observed_accesses")
                .and_then(|v| v.as_u64())
                .unwrap()
                > 0,
            "{slow}"
        );
        assert!(record.get("predicted_accesses").is_some(), "{slow}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn backend_kind_parses() {
        assert_eq!(BackendKind::by_name("file").unwrap(), BackendKind::File);
        assert_eq!(BackendKind::by_name("threaded").unwrap(), BackendKind::File);
        assert_eq!(BackendKind::by_name("inline").unwrap(), BackendKind::Inline);
        assert!(BackendKind::by_name("ramdisk").is_err());
    }
}
