//! `sqda serve` — a TCP front-end over the real-clock engine.
//!
//! The server opens a persisted [`FileStore`] tree once, wraps it in a
//! [`RealTimeEngine`] over a batched [`IoBackend`], and answers k-NN
//! queries from concurrent clients, one thread per connection. This is
//! the "real disks" end of the execution-backend seam: the very same
//! session machinery the simulator drives with a virtual clock here
//! runs against real files on the machine's clock.
//!
//! # Protocol
//!
//! Line-oriented, UTF-8, one request per line, one reply line per
//! request:
//!
//! ```text
//! -> QUERY <x,y,...> <k> [bbss|fpss|crss|woptss]
//! <- OK <n> <id>:<dist> <id>:<dist> ...
//! -> PING
//! <- PONG
//! -> STATS
//! <- STATS queries=<q> reads=<r> cache_hits=<h> cache_misses=<m>
//! -> QUIT          (close this connection)
//! <- BYE
//! -> SHUTDOWN      (stop the whole server)
//! <- BYE
//! ```
//!
//! Any malformed request gets `ERR <detail>` and the connection stays
//! open. Distances are Euclidean, printed with six decimals.

use crate::args::{parse_point, Args};
use crate::commands::{algo_by_name, open_tree};
use sqda_core::{AlgorithmKind, RealTimeEngine, Workload};
use sqda_geom::Point;
use sqda_rstar::{Node, RStarTree};
use sqda_storage::{
    FileStore, InlineBackend, IoBackend, NodeCache, PageStore, ThreadedFileBackend,
};
use std::error::Error;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

type CmdResult = Result<(), Box<dyn Error + Send + Sync>>;

/// Which [`IoBackend`] the server submits page reads through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// Per-disk worker threads with positional reads ([`ThreadedFileBackend`]).
    File,
    /// Synchronous reads on the session thread ([`InlineBackend`]).
    Inline,
}

impl BackendKind {
    fn by_name(name: &str) -> Result<Self, Box<dyn Error + Send + Sync>> {
        match name {
            "file" | "threaded" => Ok(BackendKind::File),
            "inline" => Ok(BackendKind::Inline),
            other => Err(format!("unknown backend {other:?} (want file|inline)").into()),
        }
    }

    fn build(self, store: &Arc<FileStore>) -> Arc<dyn IoBackend> {
        match self {
            BackendKind::File => Arc::new(ThreadedFileBackend::new(Arc::clone(store))),
            BackendKind::Inline => Arc::new(InlineBackend::new(Arc::clone(store))),
        }
    }
}

/// `sqda serve`
pub fn serve(args: &Args) -> CmdResult {
    let store_dir = args.required("store")?.to_string();
    let port: u16 = args.get_or("port", 0)?;
    let backend = BackendKind::by_name(args.get("backend").unwrap_or("file"))?;
    let cache: usize = args.get_or("cache", 4096)?;

    let (mut tree, meta) = open_tree(&store_dir)?;
    if cache > 0 {
        tree.set_node_cache(Arc::new(NodeCache::<Node>::new(cache)));
    }
    let listener = TcpListener::bind(("127.0.0.1", port))?;
    let addr = listener.local_addr()?;
    // The exact "listening on" line is the readiness handshake scripts
    // and the CI smoke job wait for; keep it first and flushed.
    println!("listening on {addr}");
    println!(
        "store {store_dir}: {} objects, dim {}, page size {}, {} disks, backend {}",
        tree.num_objects(),
        meta.dim,
        meta.page_size,
        tree.store().num_disks(),
        match backend {
            BackendKind::File => "file",
            BackendKind::Inline => "inline",
        }
    );
    std::io::stdout().flush()?;
    run_server(&tree, backend, listener)
}

/// Accept loop: one handler thread per connection, shared engine. Returns
/// once a client sends `SHUTDOWN` and every handler has drained.
pub fn run_server(
    tree: &RStarTree<FileStore>,
    backend: BackendKind,
    listener: TcpListener,
) -> CmdResult {
    let engine = RealTimeEngine::new(tree, backend.build(tree.store()))?;
    let addr = listener.local_addr()?;
    let shutdown = AtomicBool::new(false);
    let served = AtomicU64::new(0);
    std::thread::scope(|s| -> CmdResult {
        for conn in listener.incoming() {
            if shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = conn?;
            let engine = &engine;
            let shutdown = &shutdown;
            let served = &served;
            s.spawn(move || handle_connection(stream, engine, shutdown, served, addr));
        }
        Ok(())
    })
}

fn handle_connection(
    stream: TcpStream,
    engine: &RealTimeEngine<RStarTree<FileStore>>,
    shutdown: &AtomicBool,
    served: &AtomicU64,
    addr: SocketAddr,
) {
    let Ok(reader) = stream.try_clone() else {
        return;
    };
    let mut writer = stream;
    for line in BufReader::new(reader).lines() {
        let Ok(line) = line else { break };
        let request = line.trim();
        if request.is_empty() {
            continue;
        }
        let reply = respond(request, engine, served);
        if writeln!(writer, "{}", reply.text)
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
        match reply.control {
            Control::None => {}
            Control::Quit => break,
            Control::Shutdown => {
                shutdown.store(true, Ordering::SeqCst);
                // Unblock the accept loop so it observes the flag.
                let _ = TcpStream::connect(addr);
                break;
            }
        }
    }
}

enum Control {
    None,
    Quit,
    Shutdown,
}

struct Reply {
    text: String,
    control: Control,
}

impl Reply {
    fn line(text: String) -> Self {
        Reply {
            text,
            control: Control::None,
        }
    }
    fn err(detail: impl std::fmt::Display) -> Self {
        Reply::line(format!("ERR {detail}"))
    }
}

/// One protocol request → one reply line (plus connection control).
fn respond(
    request: &str,
    engine: &RealTimeEngine<RStarTree<FileStore>>,
    served: &AtomicU64,
) -> Reply {
    let mut words = request.split_whitespace();
    match words.next() {
        Some("PING") => Reply::line("PONG".into()),
        Some("QUIT") => Reply {
            text: "BYE".into(),
            control: Control::Quit,
        },
        Some("SHUTDOWN") => Reply {
            text: "BYE".into(),
            control: Control::Shutdown,
        },
        Some("STATS") => {
            let io = engine.access_method().io_stats();
            Reply::line(format!(
                "STATS queries={} reads={} cache_hits={} cache_misses={}",
                served.load(Ordering::Relaxed),
                io.reads,
                io.cache_hits,
                io.cache_misses
            ))
        }
        Some("QUERY") => {
            let (Some(coords), Some(k)) = (words.next(), words.next()) else {
                return Reply::err("usage: QUERY <x,y,...> <k> [algo]");
            };
            let point = match parse_point(coords).map(Point::try_new) {
                Ok(Ok(p)) => p,
                Ok(Err(e)) => return Reply::err(e),
                Err(e) => return Reply::err(e),
            };
            let k: usize = match k.parse() {
                Ok(k) if k > 0 => k,
                _ => return Reply::err(format!("bad k {k:?}")),
            };
            let kind = match words.next() {
                None => AlgorithmKind::Crss,
                Some(name) => match algo_by_name(name) {
                    Ok(kind) => kind,
                    Err(e) => return Reply::err(e),
                },
            };
            if let Some(extra) = words.next() {
                return Reply::err(format!("unexpected trailing {extra:?}"));
            }
            if point.dim() != engine.access_method().dim() {
                return Reply::err(format!(
                    "query dim {} but tree dim {}",
                    point.dim(),
                    engine.access_method().dim()
                ));
            }
            match engine.run(kind, &Workload::single(point, k), 1) {
                Err(e) => Reply::err(e),
                Ok(report) => {
                    if let Some((_, e)) = report.failures.first() {
                        return Reply::err(e);
                    }
                    served.fetch_add(1, Ordering::Relaxed);
                    let answers = &report.answers[0];
                    let mut text = format!("OK {}", answers.len());
                    for n in answers {
                        text.push_str(&format!(" {}:{:.6}", n.object.0, n.dist()));
                    }
                    Reply::line(text)
                }
            }
        }
        Some(other) => Reply::err(format!("unknown request {other:?}")),
        None => Reply::err("empty request"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meta::TreeMeta;
    use sqda_rstar::decluster::ProximityIndex;
    use sqda_rstar::RStarConfig;
    use std::io::BufRead;
    use std::path::PathBuf;

    fn build_store(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("sqda-serve-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = Arc::new(FileStore::create(&dir, 4, 100, 1024, 3).unwrap());
        let mut tree = RStarTree::create(
            store.clone(),
            RStarConfig::with_page_size(2, 1024),
            Box::new(ProximityIndex),
        )
        .unwrap();
        for i in 0..200u64 {
            tree.insert(Point::new(vec![(i % 19) as f64, (i % 13) as f64]), i)
                .unwrap();
        }
        store.sync().unwrap();
        TreeMeta {
            root: tree.root_page().as_raw(),
            dim: 2,
            page_size: 1024,
            decluster: "pi".into(),
        }
        .save(&dir)
        .unwrap();
        dir
    }

    fn request_line(
        stream: &mut TcpStream,
        reader: &mut BufReader<TcpStream>,
        req: &str,
    ) -> String {
        writeln!(stream, "{req}").unwrap();
        stream.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line.trim_end().to_string()
    }

    #[test]
    fn serves_queries_over_tcp_until_shutdown() {
        let dir = build_store("tcp");
        let (tree, _) = open_tree(dir.to_str().unwrap()).unwrap();
        let expected = tree.knn(&Point::new(vec![5.0, 5.0]), 3).unwrap();
        let listener = TcpListener::bind(("127.0.0.1", 0)).unwrap();
        let addr = listener.local_addr().unwrap();
        std::thread::scope(|s| {
            let server = s.spawn(|| run_server(&tree, BackendKind::File, listener));

            let mut a = TcpStream::connect(addr).unwrap();
            let mut ra = BufReader::new(a.try_clone().unwrap());
            assert_eq!(request_line(&mut a, &mut ra, "PING"), "PONG");
            let ok = request_line(&mut a, &mut ra, "QUERY 5.0,5.0 3 crss");
            let words: Vec<&str> = ok.split_whitespace().collect();
            assert_eq!(words[0], "OK");
            assert_eq!(words[1], "3");
            for (w, n) in words[2..].iter().zip(&expected) {
                assert_eq!(
                    *w,
                    format!("{}:{:.6}", n.object.0, n.dist()),
                    "full reply: {ok}"
                );
            }
            // Malformed requests keep the connection alive.
            assert!(request_line(&mut a, &mut ra, "QUERY 1.0 2").starts_with("ERR"));
            assert!(request_line(&mut a, &mut ra, "QUERY 1.0,2.0 0").starts_with("ERR"));
            assert!(request_line(&mut a, &mut ra, "QUERY 1.0,2.0 2 zzz").starts_with("ERR"));
            assert!(request_line(&mut a, &mut ra, "NONSENSE").starts_with("ERR"));
            let stats = request_line(&mut a, &mut ra, "STATS");
            assert!(stats.starts_with("STATS queries=1 "), "{stats}");

            // A second concurrent client.
            let mut b = TcpStream::connect(addr).unwrap();
            let mut rb = BufReader::new(b.try_clone().unwrap());
            assert!(request_line(&mut b, &mut rb, "QUERY 1.0,2.0 5").starts_with("OK 5 "));
            assert_eq!(request_line(&mut b, &mut rb, "QUIT"), "BYE");

            assert_eq!(request_line(&mut a, &mut ra, "SHUTDOWN"), "BYE");
            server.join().unwrap().unwrap();
        });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn backend_kind_parses() {
        assert_eq!(BackendKind::by_name("file").unwrap(), BackendKind::File);
        assert_eq!(BackendKind::by_name("threaded").unwrap(), BackendKind::File);
        assert_eq!(BackendKind::by_name("inline").unwrap(), BackendKind::Inline);
        assert!(BackendKind::by_name("ramdisk").is_err());
    }
}
