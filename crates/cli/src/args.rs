//! A small dependency-free command-line argument parser.
//!
//! Supports `--flag value` and bare `--flag` options plus one positional
//! subcommand, which covers the whole CLI without pulling an argument-
//! parsing crate into the approved dependency set.

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` options.
#[derive(Debug, Clone)]
pub struct Args {
    /// The subcommand (first positional argument).
    pub command: String,
    options: HashMap<String, String>,
    /// Keys the handler has read (for unknown-option detection).
    consumed: std::cell::RefCell<Vec<String>>,
}

/// Errors from argument parsing and validation.
#[derive(Debug, PartialEq, Eq)]
pub enum ArgsError {
    /// No subcommand given.
    MissingCommand,
    /// `--flag` appeared at the end without a value and is not known to
    /// be boolean.
    MissingValue(String),
    /// A required option was not supplied.
    MissingRequired(String),
    /// An option's value failed to parse.
    BadValue {
        /// The option name.
        option: String,
        /// Parse failure detail.
        detail: String,
    },
    /// A non-option positional argument after the subcommand.
    UnexpectedPositional(String),
    /// Options that no handler consumed.
    UnknownOptions(Vec<String>),
}

impl std::fmt::Display for ArgsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ArgsError::MissingCommand => write!(f, "no command given; try `sqda help`"),
            ArgsError::MissingValue(o) => write!(f, "option --{o} needs a value"),
            ArgsError::MissingRequired(o) => write!(f, "required option --{o} missing"),
            ArgsError::BadValue { option, detail } => {
                write!(f, "bad value for --{option}: {detail}")
            }
            ArgsError::UnexpectedPositional(p) => write!(f, "unexpected argument {p}"),
            ArgsError::UnknownOptions(os) => write!(f, "unknown options: --{}", os.join(", --")),
        }
    }
}

impl std::error::Error for ArgsError {}

impl Args {
    /// Parses an argument list (without the program name).
    /// `boolean_flags` lists options that take no value.
    pub fn parse<I: IntoIterator<Item = String>>(
        args: I,
        boolean_flags: &[&str],
    ) -> Result<Self, ArgsError> {
        let mut it = args.into_iter().peekable();
        let command = it.next().ok_or(ArgsError::MissingCommand)?;
        if command.starts_with('-') {
            return Err(ArgsError::MissingCommand);
        }
        let mut options = HashMap::new();
        while let Some(arg) = it.next() {
            if let Some(name) = arg.strip_prefix("--") {
                if boolean_flags.contains(&name) {
                    options.insert(name.to_string(), "true".to_string());
                } else {
                    let value = it
                        .next()
                        .ok_or_else(|| ArgsError::MissingValue(name.into()))?;
                    options.insert(name.to_string(), value);
                }
            } else {
                return Err(ArgsError::UnexpectedPositional(arg));
            }
        }
        Ok(Self {
            command,
            options,
            consumed: std::cell::RefCell::new(Vec::new()),
        })
    }

    /// An optional string option.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.consumed.borrow_mut().push(name.to_string());
        self.options.get(name).map(|s| s.as_str())
    }

    /// A required string option.
    pub fn required(&self, name: &str) -> Result<&str, ArgsError> {
        self.get(name)
            .ok_or_else(|| ArgsError::MissingRequired(name.into()))
    }

    /// An optional parsed option with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgsError>
    where
        T::Err: std::fmt::Display,
    {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|e: T::Err| ArgsError::BadValue {
                option: name.into(),
                detail: e.to_string(),
            }),
        }
    }

    /// A required parsed option.
    pub fn required_parsed<T: std::str::FromStr>(&self, name: &str) -> Result<T, ArgsError>
    where
        T::Err: std::fmt::Display,
    {
        self.required(name)?
            .parse()
            .map_err(|e: T::Err| ArgsError::BadValue {
                option: name.into(),
                detail: e.to_string(),
            })
    }

    /// A boolean flag.
    pub fn flag(&self, name: &str) -> bool {
        self.get(name).is_some()
    }

    /// Errors if any provided option was never consumed by the handler.
    pub fn finish(&self) -> Result<(), ArgsError> {
        let consumed = self.consumed.borrow();
        let unknown: Vec<String> = self
            .options
            .keys()
            .filter(|k| !consumed.contains(k))
            .cloned()
            .collect();
        if unknown.is_empty() {
            Ok(())
        } else {
            Err(ArgsError::UnknownOptions(unknown))
        }
    }
}

/// Parses a comma-separated coordinate list ("1.0,2.5,-3").
pub fn parse_point(s: &str) -> Result<Vec<f64>, ArgsError> {
    s.split(',')
        .map(|c| {
            c.trim().parse::<f64>().map_err(|e| ArgsError::BadValue {
                option: "point".into(),
                detail: format!("{c:?}: {e}"),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_command_and_options() {
        let a = Args::parse(
            strs(&["build", "--disks", "10", "--bulk", "--input", "x.csv"]),
            &["bulk"],
        )
        .unwrap();
        assert_eq!(a.command, "build");
        assert_eq!(a.get("disks"), Some("10"));
        assert!(a.flag("bulk"));
        assert_eq!(a.get_or("page-size", 4096usize).unwrap(), 4096);
        assert_eq!(a.required("input").unwrap(), "x.csv");
        a.finish().unwrap();
    }

    #[test]
    fn detects_missing_and_unknown() {
        assert_eq!(
            Args::parse(strs(&[]), &[]).unwrap_err(),
            ArgsError::MissingCommand
        );
        let a = Args::parse(strs(&["q", "--typo", "1"]), &[]).unwrap();
        assert!(matches!(a.finish(), Err(ArgsError::UnknownOptions(_))));
        let a = Args::parse(strs(&["q"]), &[]).unwrap();
        assert_eq!(
            a.required("store").unwrap_err(),
            ArgsError::MissingRequired("store".into())
        );
    }

    #[test]
    fn rejects_trailing_flag_without_value() {
        assert!(matches!(
            Args::parse(strs(&["q", "--k"]), &[]),
            Err(ArgsError::MissingValue(_))
        ));
    }

    #[test]
    fn rejects_stray_positional() {
        assert!(matches!(
            Args::parse(strs(&["q", "stray"]), &[]),
            Err(ArgsError::UnexpectedPositional(_))
        ));
    }

    #[test]
    fn bad_numeric_value() {
        let a = Args::parse(strs(&["q", "--k", "many"]), &[]).unwrap();
        assert!(matches!(
            a.get_or("k", 5usize),
            Err(ArgsError::BadValue { .. })
        ));
    }

    #[test]
    fn point_parsing() {
        assert_eq!(parse_point("1.0, 2.5 ,-3").unwrap(), vec![1.0, 2.5, -3.0]);
        assert!(parse_point("1.0,x").is_err());
    }
}
