//! End-to-end tests of the `sqda` binary: generate → build → query →
//! stats → simulate → estimate, through real process invocations.

use std::path::PathBuf;
use std::process::{Command, Output};

fn sqda(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_sqda"))
        .args(args)
        .output()
        .expect("launch sqda")
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sqda-cli-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn stdout(o: &Output) -> String {
    assert!(
        o.status.success(),
        "command failed: {}\n{}",
        String::from_utf8_lossy(&o.stderr),
        String::from_utf8_lossy(&o.stdout)
    );
    String::from_utf8_lossy(&o.stdout).into_owned()
}

#[test]
fn full_workflow() {
    let dir = workdir("workflow");
    let csv = dir.join("points.csv");
    let store = dir.join("store");

    // generate
    let out = stdout(&sqda(&[
        "generate",
        "--kind",
        "california",
        "--n",
        "3000",
        "--seed",
        "7",
        "--out",
        csv.to_str().unwrap(),
    ]));
    assert!(out.contains("3000"), "{out}");

    // build
    let out = stdout(&sqda(&[
        "build",
        "--input",
        csv.to_str().unwrap(),
        "--store",
        store.to_str().unwrap(),
        "--disks",
        "4",
        "--page-size",
        "1024",
    ]));
    assert!(out.contains("3000 objects"), "{out}");

    // stats
    let out = stdout(&sqda(&["stats", "--store", store.to_str().unwrap()]));
    assert!(out.contains("invariants     : OK"), "{out}");
    assert!(out.contains("objects        : 3000"), "{out}");

    // query
    let out = stdout(&sqda(&[
        "query",
        "--store",
        store.to_str().unwrap(),
        "--point",
        "0.5,0.5",
        "--k",
        "5",
        "--algo",
        "crss",
    ]));
    assert!(out.contains("CRSS found 5 neighbours"), "{out}");

    // range
    let out = stdout(&sqda(&[
        "range",
        "--store",
        store.to_str().unwrap(),
        "--point",
        "0.5,0.5",
        "--radius",
        "0.05",
    ]));
    assert!(out.contains("objects within 0.05"), "{out}");

    // simulate (small workload to stay fast)
    let out = stdout(&sqda(&[
        "simulate",
        "--store",
        store.to_str().unwrap(),
        "--k",
        "5",
        "--lambda",
        "5",
        "--queries",
        "10",
    ]));
    assert!(out.contains("mean response"), "{out}");
    assert!(out.contains("queries          : 10"), "{out}");

    // estimate
    let out = stdout(&sqda(&[
        "estimate",
        "--store",
        store.to_str().unwrap(),
        "--k",
        "5",
        "--lambda",
        "5",
    ]));
    assert!(out.contains("predicted response"), "{out}");

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bulk_build_and_all_algorithms() {
    let dir = workdir("bulk");
    let csv = dir.join("u.csv");
    let store = dir.join("store");
    stdout(&sqda(&[
        "generate",
        "--kind",
        "uniform",
        "--n",
        "2000",
        "--dim",
        "3",
        "--out",
        csv.to_str().unwrap(),
    ]));
    let out = stdout(&sqda(&[
        "build",
        "--input",
        csv.to_str().unwrap(),
        "--store",
        store.to_str().unwrap(),
        "--disks",
        "3",
        "--bulk",
        "--decluster",
        "rr",
        "--split",
        "quadratic",
    ]));
    assert!(out.contains("bulk-loaded"), "{out}");
    for algo in ["bbss", "fpss", "crss", "woptss"] {
        let out = stdout(&sqda(&[
            "query",
            "--store",
            store.to_str().unwrap(),
            "--point",
            "0.5,0.5,0.5",
            "--k",
            "3",
            "--algo",
            algo,
        ]));
        assert!(out.contains("found 3 neighbours"), "{algo}: {out}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn helpful_errors() {
    let o = sqda(&["query", "--store", "/nonexistent-sqda-store"]);
    assert!(!o.status.success());
    let o = sqda(&["frobnicate"]);
    assert!(!o.status.success());
    let o = sqda(&[
        "generate",
        "--kind",
        "uniform",
        "--n",
        "10",
        "--out",
        "/tmp/x.csv",
        "--bogus",
        "1",
    ]);
    assert!(!o.status.success());
    let help = sqda(&["help"]);
    assert!(String::from_utf8_lossy(&help.stdout).contains("USAGE"));
}
