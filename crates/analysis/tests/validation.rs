//! Validation of the analytical estimators against ground truth: the
//! logical executor (node accesses) and the event-driven simulator
//! (response times).

use sqda_analysis::{
    estimate_response, expected_knn_accesses, expected_range_accesses, DeviceCalibration,
    DiskServiceModel, QueryIoProfile, TreeProfile,
};
use sqda_core::{exec::run_query, AlgorithmKind, Simulation, Workload};
use sqda_datasets::uniform;
use sqda_rstar::decluster::ProximityIndex;
use sqda_rstar::{RStarConfig, RStarTree};
use sqda_simkernel::SystemParams;
use sqda_storage::ArrayStore;
use std::sync::Arc;

fn build(n: usize, dim: usize, disks: u32) -> (RStarTree<ArrayStore>, sqda_datasets::Dataset) {
    let dataset = uniform(n, dim, 42);
    let store = Arc::new(ArrayStore::new(disks, 1449, 7));
    let mut tree =
        RStarTree::create(store, RStarConfig::new(dim), Box::new(ProximityIndex)).unwrap();
    for (i, p) in dataset.points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    (tree, dataset)
}

#[test]
fn range_access_estimate_matches_measurement() {
    let (tree, dataset) = build(10_000, 2, 5);
    let profile = TreeProfile::measure(&tree).unwrap();
    let queries = dataset.sample_queries(50, 9);
    for radius in [0.01, 0.05, 0.1] {
        tree.store().reset_stats();
        use sqda_storage::PageStore;
        for q in &queries {
            tree.range_query(q, radius).unwrap();
        }
        let measured = tree.store().stats().reads as f64 / queries.len() as f64;
        let estimated = expected_range_accesses(&profile, radius);
        let ratio = estimated / measured;
        assert!(
            (0.6..1.6).contains(&ratio),
            "radius {radius}: estimated {estimated:.1}, measured {measured:.1}"
        );
    }
}

#[test]
fn knn_access_estimate_matches_woptss() {
    // The k-NN estimate models the weak-optimal access count.
    let (tree, dataset) = build(10_000, 2, 5);
    let profile = TreeProfile::measure(&tree).unwrap();
    let queries = dataset.sample_queries(40, 11);
    for k in [5usize, 20, 100] {
        let mut measured = 0.0;
        for q in &queries {
            let mut algo = AlgorithmKind::Woptss.build(&tree, q.clone(), k).unwrap();
            measured += run_query(&tree, algo.as_mut()).unwrap().nodes_visited as f64;
        }
        measured /= queries.len() as f64;
        let estimated = expected_knn_accesses(&profile, k).unwrap();
        let ratio = estimated / measured;
        assert!(
            (0.4..2.0).contains(&ratio),
            "k={k}: estimated {estimated:.1}, measured {measured:.1}"
        );
    }
}

#[test]
fn response_estimate_tracks_simulation_below_saturation() {
    let (tree, dataset) = build(10_000, 2, 10);
    let queries = dataset.sample_queries(60, 13);
    let params = SystemParams::with_disks(10);
    let sim = Simulation::new(&tree, params.clone()).unwrap();
    let k = 20;
    for lambda in [1.0f64, 5.0] {
        // Measure the CRSS I/O profile once (logical executor).
        let mut accesses = 0.0;
        let mut batches = 0.0;
        for q in &queries {
            let mut algo = AlgorithmKind::Crss.build(&tree, q.clone(), k).unwrap();
            let run = run_query(&tree, algo.as_mut()).unwrap();
            accesses += run.nodes_visited as f64;
            batches += run.batches as f64;
        }
        let io = QueryIoProfile {
            accesses: accesses / queries.len() as f64,
            batches: batches / queries.len() as f64,
        };
        let predicted = estimate_response(&params, io, lambda)
            .response_s
            .expect("stable");
        let simulated = sim
            .run(
                AlgorithmKind::Crss,
                &Workload::poisson(queries.clone(), k, lambda, 15),
                17,
            )
            .unwrap()
            .mean_response_s;
        let ratio = predicted / simulated;
        assert!(
            (0.3..3.0).contains(&ratio),
            "λ={lambda}: predicted {predicted:.4}, simulated {simulated:.4}"
        );
    }
}

#[test]
fn calibration_recovers_simulated_service_terms() {
    // The acceptance pin for device calibration: run a workload on the
    // simulated backend with known `SystemParams`, fit a
    // `DeviceCalibration` from the recorded trace, and recover the
    // model's seek / rotation / fixed service terms within 10%. The
    // sampled means converge on the analytic integrals because both
    // assume uniformly random cylinder placement.
    let (tree, dataset) = build(10_000, 2, 5);
    let params = SystemParams::with_disks(5);
    let truth = DiskServiceModel::from_params(&params.disk);
    let sim = Simulation::new(&tree, params.clone()).unwrap();
    let queries = dataset.sample_queries(60, 23);
    let workload = Workload::poisson(queries, 20, 2.0, 29);
    let mut recorder = sqda_obs::CollectingRecorder::default();
    sim.run_recorded(AlgorithmKind::Crss, &workload, 31, &mut recorder)
        .unwrap();
    let cal = DeviceCalibration::fit_from_events(recorder.events()).unwrap();
    assert!(cal.samples > 200, "need a real sample size, got {}", cal.samples);
    for (name, fitted, expected) in [
        ("seek", cal.mean_seek_s, truth.mean_seek_s),
        ("rotation", cal.mean_rotation_s, truth.mean_rotation_s),
        ("fixed", cal.fixed_s, truth.fixed_s),
    ] {
        let rel = (fitted - expected).abs() / expected;
        assert!(
            rel < 0.10,
            "{name}: fitted {fitted:.6}, model {expected:.6}, off by {:.1}%",
            rel * 100.0
        );
    }
    // Applying the fit reproduces the fitted terms, closing the loop:
    // calibrated parameters predict with the measured service time.
    let applied = DiskServiceModel::from_params(&cal.apply(&params).disk);
    assert!((applied.mean_service_s() - cal.mean_service_s()).abs() < 1e-9);
}

#[test]
fn estimator_predicts_instability_where_simulation_saturates() {
    let (tree, dataset) = build(8_000, 2, 2);
    let queries = dataset.sample_queries(20, 19);
    let params = SystemParams::with_disks(2);
    // FPSS at high λ on 2 disks: the estimator must flag instability.
    let mut accesses = 0.0;
    for q in &queries {
        let mut algo = AlgorithmKind::Fpss.build(&tree, q.clone(), 50).unwrap();
        accesses += run_query(&tree, algo.as_mut()).unwrap().nodes_visited as f64;
    }
    let io = QueryIoProfile {
        accesses: accesses / queries.len() as f64,
        batches: 4.0,
    };
    let estimate = estimate_response(&params, io, 50.0);
    assert!(estimate.utilization >= 1.0);
    assert_eq!(estimate.response_s, None);
}
