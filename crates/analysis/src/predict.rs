//! The shared end-to-end k-NN prediction: tree profile + system
//! parameters → expected accesses, batch structure, utilization and
//! response time.
//!
//! This is the single funnel every consumer goes through — the `sqda
//! estimate` and `sqda explain` commands, the serve-time `EXPLAIN` verb,
//! and the `analysis_validation` / `bench_explain` experiments — so they
//! all agree on the batching assumption and the floors applied before
//! the queueing formula.

use crate::{estimate_response, expected_knn_accesses, QueryIoProfile, TreeProfile};
use sqda_simkernel::SystemParams;

/// An analytical prediction for one k-NN query shape.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPrediction {
    /// Expected node accesses (weak-optimal count, ≥ 1: the root).
    pub accesses: f64,
    /// Assumed sequential fetch rounds: a CRSS-style plan activates
    /// about one page per disk per round but needs at least one round
    /// per tree level.
    pub batches: f64,
    /// Predicted per-disk utilization `ρ`.
    pub utilization: f64,
    /// Predicted mean response time; `None` when `ρ ≥ 1` (unstable).
    pub response_s: Option<f64>,
}

/// Predicts a k-NN query on the profiled tree under `params` at arrival
/// rate `lambda` (> 0) per second. `height` is the tree height in
/// levels, the floor on the number of fetch rounds. `None` for a
/// degenerate (zero-volume) data space, where no access estimate exists.
pub fn predict_knn(
    profile: &TreeProfile,
    params: &SystemParams,
    height: u32,
    k: usize,
    lambda: f64,
) -> Option<QueryPrediction> {
    assert!(lambda > 0.0, "arrival rate must be positive");
    let accesses = expected_knn_accesses(profile, k)?;
    let disks = params.num_disks as f64;
    let io = QueryIoProfile {
        accesses,
        batches: (accesses / disks).max(height as f64).max(1.0),
    };
    let estimate = estimate_response(params, io, lambda);
    Some(QueryPrediction {
        accesses,
        batches: io.batches,
        utilization: estimate.utilization,
        response_s: estimate.response_s,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LevelProfile;

    fn profile() -> TreeProfile {
        TreeProfile {
            dim: 2,
            num_objects: 10_000,
            space_extent: vec![1.0, 1.0],
            levels: vec![
                LevelProfile {
                    level: 0,
                    nodes: 100,
                    mean_extent: vec![0.1, 0.1],
                },
                LevelProfile {
                    level: 1,
                    nodes: 1,
                    mean_extent: vec![1.0, 1.0],
                },
            ],
        }
    }

    #[test]
    fn prediction_floors_batches_at_height() {
        let p = predict_knn(&profile(), &SystemParams::with_disks(10), 2, 10, 0.1).unwrap();
        assert!(p.accesses >= 1.0);
        // Few expected accesses on 10 disks: the height floor binds.
        assert_eq!(p.batches, 2.0);
        assert!(p.utilization > 0.0 && p.utilization < 1.0);
        assert!(p.response_s.unwrap() > 0.0);
    }

    #[test]
    fn prediction_matches_manual_composition() {
        let prof = profile();
        let params = SystemParams::with_disks(4);
        let p = predict_knn(&prof, &params, 3, 50, 2.0).unwrap();
        let accesses = expected_knn_accesses(&prof, 50).unwrap();
        let io = QueryIoProfile {
            accesses,
            batches: (accesses / 4.0).max(3.0),
        };
        let est = estimate_response(&params, io, 2.0);
        assert_eq!(p.accesses, accesses);
        assert_eq!(p.batches, io.batches);
        assert_eq!(p.utilization, est.utilization);
        assert_eq!(p.response_s, est.response_s);
    }

    #[test]
    fn degenerate_space_has_no_prediction() {
        let mut prof = profile();
        prof.space_extent = vec![0.0, 0.0];
        assert!(predict_knn(&prof, &SystemParams::with_disks(2), 1, 5, 1.0).is_none());
    }

    #[test]
    fn saturated_prediction_reports_utilization() {
        let p = predict_knn(&profile(), &SystemParams::with_disks(1), 2, 100, 500.0).unwrap();
        assert!(p.utilization >= 1.0);
        assert_eq!(p.response_s, None);
    }
}
