//! Queueing-based response-time prediction.
//!
//! The system is modelled as `D` parallel M/M/1 disk queues fed by the
//! aggregate page-request stream plus a serial per-batch pipeline delay:
//! a query that fetches `A` pages in `B` sequential batches experiences
//! roughly
//!
//! ```text
//! R ≈ startup + B · (W_q + S + bus) + cpu
//! ```
//!
//! where `S` is the mean disk service time (expected seek over uniform
//! random cylinders + half a revolution + transfer + controller),
//! `W_q = ρ·S / (1−ρ)` the M/M/1 waiting time at per-disk utilization
//! `ρ = λ·A·S / D`, and each batch pays one disk round plus one bus
//! transfer end-to-end (transfers of a batch overlap with its seeks).
//!
//! This is deliberately a closed form, not a simulator: good to a small
//! factor below saturation and exact in its limiting behaviours (ρ → 0
//! gives the no-contention latency; ρ → 1 diverges), which is what a
//! query optimizer needs to choose between BBSS-style serial plans
//! (`B = A`) and CRSS-style parallel plans (`B ≈ A/u`).

use sqda_simkernel::{DiskParams, SystemParams};

/// Mean per-request service time of one disk under random placement.
#[derive(Debug, Clone, PartialEq)]
pub struct DiskServiceModel {
    /// Expected seek time over uniformly random start/target cylinders.
    pub mean_seek_s: f64,
    /// Half a revolution.
    pub mean_rotation_s: f64,
    /// Transfer + controller overhead.
    pub fixed_s: f64,
}

impl DiskServiceModel {
    /// Derives the model from drive parameters. The expected seek
    /// distance between two independent uniform cylinders is `C/3`; we
    /// integrate the two-phase seek curve over the exact distance
    /// distribution instead of evaluating it at the mean, since the curve
    /// is concave in its short-seek phase.
    pub fn from_params(p: &DiskParams) -> Self {
        let c = p.num_cylinders as f64;
        // Distance distribution for |X−Y| with X,Y uniform on [0,C):
        // f(d) = 2(C−d)/C². Numerically integrate seek_time over it.
        let steps = 4096usize;
        let mut mean_seek = 0.0;
        for i in 0..steps {
            let d = (i as f64 + 0.5) / steps as f64 * c;
            let weight = 2.0 * (c - d) / (c * c) * (c / steps as f64);
            mean_seek += p.seek_time_s(d.round() as u32) * weight;
        }
        Self {
            mean_seek_s: mean_seek,
            mean_rotation_s: p.revolution_time_s / 2.0,
            fixed_s: (p.transfer_ms + p.controller_overhead_ms) / 1e3,
        }
    }

    /// Mean total service time per page read.
    pub fn mean_service_s(&self) -> f64 {
        self.mean_seek_s + self.mean_rotation_s + self.fixed_s
    }
}

/// The I/O shape of one query under some algorithm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueryIoProfile {
    /// Pages fetched per query.
    pub accesses: f64,
    /// Sequential fetch rounds per query (`= accesses` for BBSS,
    /// `≈ accesses / u` for CRSS, `≈ tree height` for FPSS/WOPTSS).
    pub batches: f64,
}

/// A predicted mean response time with its components.
#[derive(Debug, Clone, PartialEq)]
pub struct ResponseEstimate {
    /// Per-disk utilization `ρ` (≥ 1 ⇒ the system is predicted unstable).
    pub utilization: f64,
    /// Mean queueing wait per disk visit.
    pub wait_s: f64,
    /// Predicted mean response time; `None` when unstable.
    pub response_s: Option<f64>,
}

/// Predicts the mean response time of queries with the given I/O profile
/// arriving at `lambda` per second on the system `params`.
pub fn estimate_response(
    params: &SystemParams,
    io: QueryIoProfile,
    lambda: f64,
) -> ResponseEstimate {
    assert!(lambda > 0.0 && io.accesses >= 1.0 && io.batches >= 1.0);
    let service = DiskServiceModel::from_params(&params.disk).mean_service_s();
    let d = params.num_disks as f64;
    let rho = lambda * io.accesses * service / d;
    if rho >= 1.0 {
        return ResponseEstimate {
            utilization: rho,
            wait_s: f64::INFINITY,
            response_s: None,
        };
    }
    let wait = rho * service / (1.0 - rho);
    let bus = params.bus_transfer_ms / 1e3;
    let response = params.query_startup_s + io.batches * (wait + service + bus);
    ResponseEstimate {
        utilization: rho,
        wait_s: wait,
        response_s: Some(response),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_model_magnitudes() {
        let m = DiskServiceModel::from_params(&DiskParams::default());
        // HP-C2200A: expected seek of C/3 ≈ 483 cylinders is a long seek
        // ≈ 8 + 0.008·483 ≈ 11.9 ms, but averaging over the distribution
        // (many short seeks) pulls it lower.
        assert!(m.mean_seek_s > 0.004 && m.mean_seek_s < 0.013, "{m:?}");
        assert!((m.mean_rotation_s - 0.00745).abs() < 1e-9);
        assert!((m.fixed_s - 0.002).abs() < 1e-12);
        let s = m.mean_service_s();
        assert!(s > 0.013 && s < 0.023, "service {s}");
    }

    #[test]
    fn low_load_is_pure_latency() {
        let params = SystemParams::with_disks(10);
        let io = QueryIoProfile {
            accesses: 10.0,
            batches: 3.0,
        };
        let e = estimate_response(&params, io, 0.001);
        assert!(e.utilization < 1e-4);
        let service = DiskServiceModel::from_params(&params.disk).mean_service_s();
        let expected = 0.001 + 3.0 * (service + 0.0004);
        assert!((e.response_s.unwrap() - expected).abs() < 1e-4);
    }

    #[test]
    fn response_grows_with_load_and_diverges() {
        let params = SystemParams::with_disks(5);
        let io = QueryIoProfile {
            accesses: 20.0,
            batches: 5.0,
        };
        let r1 = estimate_response(&params, io, 1.0).response_s.unwrap();
        let r5 = estimate_response(&params, io, 5.0).response_s.unwrap();
        assert!(r5 > r1);
        // Push past saturation: ρ = λ·A·S/D ≥ 1.
        let unstable = estimate_response(&params, io, 1000.0);
        assert!(unstable.utilization >= 1.0);
        assert_eq!(unstable.response_s, None);
    }

    #[test]
    fn serial_plan_slower_than_parallel_plan() {
        // Same page count, different batching: the CRSS-shaped plan must
        // be predicted faster — the whole point of the estimator.
        let params = SystemParams::with_disks(10);
        let serial = QueryIoProfile {
            accesses: 30.0,
            batches: 30.0,
        };
        let parallel = QueryIoProfile {
            accesses: 36.0,
            batches: 5.0,
        };
        let rs = estimate_response(&params, serial, 5.0).response_s.unwrap();
        let rp = estimate_response(&params, parallel, 5.0)
            .response_s
            .unwrap();
        assert!(rp < rs / 2.0, "parallel {rp} vs serial {rs}");
    }
}
