//! Analytical cost models for similarity queries on disk arrays.
//!
//! The paper closes with: *"Future research may include the derivation
//! and exploitation of analytical results in similarity search for disk
//! arrays, estimating the response time of a query."* This crate
//! provides that layer:
//!
//! 1. [`TreeProfile`] — per-level geometry statistics extracted from a
//!    live R\*-tree (node counts, mean MBR extents);
//! 2. [`expected_range_accesses`] — the classic Minkowski-sum estimate of
//!    how many nodes a similarity *range* query touches (Kamel &
//!    Faloutsos / Pagel et al.);
//! 3. [`expected_knn_radius`] — the expected k-NN sphere radius under a
//!    local-uniformity assumption (Berchtold et al. style), which turns
//!    the k-NN estimate into a range estimate;
//! 4. [`DiskServiceModel`] and [`ResponseEstimate`] — an M/M/1-style
//!    queueing prediction of mean query response time for a given
//!    algorithm I/O profile (accesses + batch structure) at arrival rate
//!    λ;
//! 5. [`predict_knn`] — the shared end-to-end k-NN prediction (profile →
//!    accesses → batches → response) that the CLI, the serve-time
//!    `EXPLAIN` verb and the validation experiments all funnel through;
//! 6. [`DeviceCalibration`] — service-time terms fitted from observed
//!    executions (event traces or live disk totals), persisted as
//!    `calibration.json` and applied back onto [`SystemParams`] so the
//!    estimators predict with measured constants.
//!
//! [`SystemParams`]: sqda_simkernel::SystemParams
//!
//! The estimators are validated against the event-driven simulation in
//! this crate's tests and the `analysis_validation` experiment binary:
//! node-access estimates land within tens of percent on uniform-like
//! data, response-time estimates within a small factor below saturation
//! — the accuracy class such closed forms are known to achieve on
//! low-dimensional data.

mod calibration;
mod predict;
mod profile;
mod queueing;
mod selectivity;

pub use calibration::{DeviceCalibration, CALIBRATION_SCHEMA};
pub use predict::{predict_knn, QueryPrediction};
pub use profile::{LevelProfile, TreeProfile};
pub use queueing::{estimate_response, DiskServiceModel, QueryIoProfile, ResponseEstimate};
pub use selectivity::{expected_knn_accesses, expected_knn_radius, expected_range_accesses};
