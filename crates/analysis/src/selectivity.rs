//! Expected node accesses for similarity queries.
//!
//! Classic R-tree analysis (Kamel–Faloutsos, Pagel et al.): a query
//! region intersects a node iff the query's center falls inside the
//! node's MBR extended by the query radius (a Minkowski sum). For query
//! centers following the data distribution over a space of extent `W_d`
//! per dimension, a node with mean extents `s_d` is visited with
//! probability ≈ `Π_d min(1, (s_d + 2r) / W_d)`, giving
//!
//! ```text
//! E[accesses] = Σ_levels  nodes(level) · Π_d min(1, (s_d(level) + 2r) / W_d)
//! ```
//!
//! k-NN queries are mapped to range queries through the expected k-NN
//! radius under local uniformity: the sphere around the query point that
//! is expected to contain `k` of the `n` objects.

use crate::TreeProfile;

/// Expected node accesses for a similarity range query of radius
/// `radius` (uniformity assumptions as per module docs). The root is
/// always accessed.
pub fn expected_range_accesses(profile: &TreeProfile, radius: f64) -> f64 {
    assert!(radius >= 0.0, "radius must be non-negative");
    let mut total = 0.0;
    for level in &profile.levels {
        let mut p = 1.0f64;
        for d in 0..profile.dim {
            let w = profile.space_extent[d];
            if w <= 0.0 {
                // Degenerate dimension: every query hits it.
                continue;
            }
            let reach = (level.mean_extent[d] + 2.0 * radius) / w;
            p *= reach.min(1.0);
        }
        total += level.nodes as f64 * p;
    }
    // The root is read unconditionally.
    total.max(1.0)
}

/// Volume of the unit d-ball, `V_d = π^(d/2) / Γ(d/2 + 1)`.
fn unit_ball_volume(dim: usize) -> f64 {
    // Recurrence V_d = V_{d-2} · 2π/d with V_0 = 1, V_1 = 2 avoids Γ.
    match dim {
        0 => 1.0,
        1 => 2.0,
        _ => unit_ball_volume(dim - 2) * std::f64::consts::TAU / dim as f64,
    }
}

/// Expected distance to the k-th nearest neighbour of a query point
/// drawn from the data distribution, assuming local uniformity with the
/// global density: the radius whose ball is expected to hold `k` points.
///
/// Returns `None` for degenerate (zero-volume) data spaces.
pub fn expected_knn_radius(profile: &TreeProfile, k: usize) -> Option<f64> {
    let density = profile.density()?;
    if density <= 0.0 {
        return None;
    }
    let v_d = unit_ball_volume(profile.dim);
    // k = density · V_d · r^dim  ⇒  r = (k / (density · V_d))^(1/dim)
    Some((k as f64 / (density * v_d)).powf(1.0 / profile.dim as f64))
}

/// Expected node accesses for a k-NN query: the weak-optimal access
/// count (nodes intersecting the final k-NN sphere), i.e. an estimate of
/// WOPTSS's I/O. Real algorithms access this many nodes or more.
pub fn expected_knn_accesses(profile: &TreeProfile, k: usize) -> Option<f64> {
    let r = expected_knn_radius(profile, k)?;
    Some(expected_range_accesses(profile, r))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::LevelProfile;

    fn uniform_profile(n: u64, dim: usize, leaves: u64, leaf_extent: f64) -> TreeProfile {
        TreeProfile {
            dim,
            num_objects: n,
            space_extent: vec![1.0; dim],
            levels: vec![
                LevelProfile {
                    level: 0,
                    nodes: leaves,
                    mean_extent: vec![leaf_extent; dim],
                },
                LevelProfile {
                    level: 1,
                    nodes: 1,
                    mean_extent: vec![1.0; dim],
                },
            ],
        }
    }

    #[test]
    fn unit_ball_volumes() {
        assert!((unit_ball_volume(1) - 2.0).abs() < 1e-12);
        assert!((unit_ball_volume(2) - std::f64::consts::PI).abs() < 1e-12);
        assert!((unit_ball_volume(3) - 4.18879).abs() < 1e-4);
        assert!((unit_ball_volume(4) - 4.93480).abs() < 1e-4);
    }

    #[test]
    fn zero_radius_visits_overlap_path() {
        // A point query visits each level in proportion to node extents.
        let p = uniform_profile(10_000, 2, 100, 0.1);
        let e = expected_range_accesses(&p, 0.0);
        // 100 leaves × 0.01 + root = 1 + 1 = 2.
        assert!((e - 2.0).abs() < 1e-9, "{e}");
    }

    #[test]
    fn accesses_grow_with_radius_and_saturate() {
        let p = uniform_profile(10_000, 2, 100, 0.1);
        let mut prev = 0.0;
        for r in [0.0, 0.05, 0.1, 0.2, 0.5, 2.0] {
            let e = expected_range_accesses(&p, r);
            assert!(e >= prev);
            prev = e;
        }
        // Huge radius: everything is read.
        assert!((prev - 101.0).abs() < 1e-9);
    }

    #[test]
    fn knn_radius_scales_with_k() {
        let p = uniform_profile(10_000, 2, 100, 0.1);
        let r1 = expected_knn_radius(&p, 1).unwrap();
        let r100 = expected_knn_radius(&p, 100).unwrap();
        // In 2-d, radius grows as sqrt(k).
        assert!((r100 / r1 - 10.0).abs() < 1e-6);
        // Sanity: ball of radius r1 holds ~1 of 10k points.
        let expect = 10_000.0 * std::f64::consts::PI * r1 * r1;
        assert!((expect - 1.0).abs() < 1e-9);
    }

    #[test]
    fn knn_accesses_monotone_in_k() {
        let p = uniform_profile(50_000, 3, 500, 0.08);
        let mut prev = 0.0;
        for k in [1, 10, 100, 1000] {
            let e = expected_knn_accesses(&p, k).unwrap();
            assert!(e >= prev, "k={k}");
            prev = e;
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_radius_panics() {
        let p = uniform_profile(100, 2, 10, 0.1);
        expected_range_accesses(&p, -1.0);
    }
}
