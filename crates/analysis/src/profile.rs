//! Per-level geometry statistics of a tree.

use sqda_rstar::{RStarError, RStarTree};
use sqda_storage::PageStore;

/// Statistics of one tree level.
#[derive(Debug, Clone, PartialEq)]
pub struct LevelProfile {
    /// The level (0 = leaves).
    pub level: u32,
    /// Number of nodes on the level.
    pub nodes: u64,
    /// Mean MBR side length per dimension over the level's nodes.
    pub mean_extent: Vec<f64>,
}

/// Geometry profile of a whole tree, the input to the selectivity
/// estimators.
///
/// Only aggregate statistics are retained — the estimators deliberately
/// work from O(height) numbers, the same information a query optimizer
/// would keep in a catalog.
#[derive(Debug, Clone, PartialEq)]
pub struct TreeProfile {
    /// Dimensionality.
    pub dim: usize,
    /// Indexed objects.
    pub num_objects: u64,
    /// The data-space bounding box side lengths (root MBR extents).
    pub space_extent: Vec<f64>,
    /// Per-level statistics, `[0]` = leaves, last = root level.
    pub levels: Vec<LevelProfile>,
}

impl TreeProfile {
    /// Extracts the profile by one full traversal.
    pub fn measure<S: PageStore>(tree: &RStarTree<S>) -> Result<Self, RStarError> {
        let dim = tree.dim();
        let height = tree.height() as usize;
        let mut nodes = vec![0u64; height];
        let mut extent_sums = vec![vec![0.0f64; dim]; height];
        let mut stack = vec![tree.root_page()];
        let mut space_extent = vec![0.0; dim];
        while let Some(page) = stack.pop() {
            let node = tree.read_node_profiled(page)?;
            let level = node.level() as usize;
            nodes[level] += 1;
            if let Some(mbr) = node.mbr() {
                for (d, sum) in extent_sums[level].iter_mut().enumerate() {
                    *sum += mbr.extent(d);
                }
                if page == tree.root_page() {
                    space_extent = (0..dim).map(|d| mbr.extent(d)).collect();
                }
            }
            if !node.is_leaf() {
                stack.extend(node.internal_iter().map(|e| e.child));
            }
        }
        let levels = (0..height)
            .map(|l| LevelProfile {
                level: l as u32,
                nodes: nodes[l],
                mean_extent: extent_sums[l]
                    .iter()
                    .map(|s| {
                        if nodes[l] == 0 {
                            0.0
                        } else {
                            s / nodes[l] as f64
                        }
                    })
                    .collect(),
            })
            .collect();
        Ok(Self {
            dim,
            num_objects: tree.num_objects(),
            space_extent,
            levels,
        })
    }

    /// The data density (objects per unit volume of the data space).
    /// `None` when the space has zero volume (degenerate data).
    pub fn density(&self) -> Option<f64> {
        let volume: f64 = self.space_extent.iter().product();
        if volume <= 0.0 {
            None
        } else {
            Some(self.num_objects as f64 / volume)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use sqda_geom::Point;
    use sqda_rstar::decluster::ProximityIndex;
    use sqda_rstar::RStarConfig;
    use sqda_storage::ArrayStore;
    use std::sync::Arc;

    fn build(n: usize, dim: usize) -> RStarTree<ArrayStore> {
        let store = Arc::new(ArrayStore::new(4, 1449, 1));
        let mut tree = RStarTree::create(
            store,
            RStarConfig::new(dim).with_max_entries(16),
            Box::new(ProximityIndex),
        )
        .unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        for i in 0..n {
            let p = Point::new((0..dim).map(|_| rng.gen::<f64>()).collect());
            tree.insert(p, i as u64).unwrap();
        }
        tree
    }

    #[test]
    fn profile_structure() {
        let tree = build(3000, 2);
        let p = TreeProfile::measure(&tree).unwrap();
        assert_eq!(p.dim, 2);
        assert_eq!(p.num_objects, 3000);
        assert_eq!(p.levels.len(), tree.height() as usize);
        // One root; node counts decrease with level.
        assert_eq!(p.levels.last().unwrap().nodes, 1);
        for w in p.levels.windows(2) {
            assert!(w[0].nodes >= w[1].nodes);
        }
        // Leaf MBRs are smaller than the root MBR.
        let leaf = &p.levels[0];
        for d in 0..2 {
            assert!(leaf.mean_extent[d] < p.space_extent[d]);
            assert!(leaf.mean_extent[d] > 0.0);
        }
        // Uniform unit-cube data: density ≈ n.
        let density = p.density().unwrap();
        assert!(density > 2500.0 && density < 3700.0, "density {density}");
        // Profiling I/O is book-kept separately from query I/O: one
        // profiled read per node in the tree, none attributed elsewhere.
        let io = tree.io_stats();
        let total_nodes: u64 = p.levels.iter().map(|l| l.nodes).sum();
        assert_eq!(io.profile_reads, total_nodes);
    }

    #[test]
    fn degenerate_space_density() {
        // All points identical: zero-volume space.
        let store = Arc::new(ArrayStore::new(2, 100, 3));
        let mut tree = RStarTree::create(
            store,
            RStarConfig::new(2).with_max_entries(8),
            Box::new(ProximityIndex),
        )
        .unwrap();
        for i in 0..50 {
            tree.insert(Point::new(vec![1.0, 1.0]), i).unwrap();
        }
        let p = TreeProfile::measure(&tree).unwrap();
        assert_eq!(p.density(), None);
    }
}
