//! Device calibration: fitting the disk service-time model from
//! observed executions instead of data-sheet constants.
//!
//! [`DiskServiceModel`] is derived from Table 2 drive parameters; real
//! drives (and the real-clock backend's actual I/O path) drift from
//! those constants. A [`DeviceCalibration`] closes the loop: it fits the
//! three service-time terms — mean seek, mean rotational latency, fixed
//! transfer + controller overhead — from observation, persists them as
//! `calibration.json` beside the store, and re-parameterizes a
//! [`SystemParams`] so every downstream estimator ([`estimate_response`],
//! [`predict_knn`]) predicts with the fitted terms.
//!
//! Two fitting paths cover the two execution worlds:
//!
//! * [`DeviceCalibration::fit_from_events`] — from a recorded event
//!   trace (simulation or flight-recorder replay) whose `DiskService`
//!   events carry separable seek / rotation / transfer components;
//! * [`DeviceCalibration::fit_from_totals`] — from live per-disk
//!   aggregates (request count + busy time), which only constrain the
//!   *total* mean service time; the three terms are apportioned by the
//!   ratios of a reference model.
//!
//! [`estimate_response`]: crate::estimate_response
//! [`predict_knn`]: crate::predict_knn

use crate::DiskServiceModel;
use sqda_obs::json::{self, ObjWriter, Value};
use sqda_obs::Event;
use sqda_simkernel::SystemParams;
use std::path::{Path, PathBuf};

/// Version pinned into `calibration.json` so readers can reject files
/// written by a future, incompatible schema.
pub const CALIBRATION_SCHEMA: u64 = 1;

/// Fitted disk service-time terms, with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceCalibration {
    /// Disk requests the fit is based on.
    pub samples: u64,
    /// Fitted mean seek time per request, seconds.
    pub mean_seek_s: f64,
    /// Fitted mean rotational latency per request, seconds.
    pub mean_rotation_s: f64,
    /// Fitted transfer + controller overhead per request, seconds.
    pub fixed_s: f64,
    /// Where the samples came from: `"trace"` (separable event
    /// components) or `"live"` (totals apportioned by a reference model).
    pub source: String,
}

impl DeviceCalibration {
    /// The fitted terms as a [`DiskServiceModel`].
    pub fn service_model(&self) -> DiskServiceModel {
        DiskServiceModel {
            mean_seek_s: self.mean_seek_s,
            mean_rotation_s: self.mean_rotation_s,
            fixed_s: self.fixed_s,
        }
    }

    /// Fitted mean total service time per request.
    pub fn mean_service_s(&self) -> f64 {
        self.mean_seek_s + self.mean_rotation_s + self.fixed_s
    }

    /// Fits the three terms from a recorded event stream by averaging
    /// the separable components of every `DiskService` event. `None`
    /// when the stream contains no disk services.
    pub fn fit_from_events(events: &[(u64, Event)]) -> Option<Self> {
        let mut n = 0u64;
        let (mut seek, mut rotation, mut transfer) = (0u128, 0u128, 0u128);
        for (_, event) in events {
            if let Event::DiskService {
                seek_ns,
                rotation_ns,
                transfer_ns,
                ..
            } = event
            {
                n += 1;
                seek += *seek_ns as u128;
                rotation += *rotation_ns as u128;
                transfer += *transfer_ns as u128;
            }
        }
        if n == 0 {
            return None;
        }
        let mean = |sum: u128| sum as f64 / n as f64 / 1e9;
        Some(Self {
            samples: n,
            mean_seek_s: mean(seek),
            mean_rotation_s: mean(rotation),
            fixed_s: mean(transfer),
            source: "trace".to_string(),
        })
    }

    /// Fits from live aggregates: `requests` reads totalling `busy_ns`
    /// of device service time. The totals pin the *mean service time*
    /// exactly; the split into seek / rotation / fixed follows the
    /// `reference` model's proportions (the real backend cannot observe
    /// head movement separately). `None` when no requests were served.
    pub fn fit_from_totals(
        requests: u64,
        busy_ns: u64,
        reference: &DiskServiceModel,
    ) -> Option<Self> {
        if requests == 0 {
            return None;
        }
        let observed = busy_ns as f64 / requests as f64 / 1e9;
        let total = reference.mean_service_s();
        let scale = if total > 0.0 { observed / total } else { 0.0 };
        Some(Self {
            samples: requests,
            mean_seek_s: reference.mean_seek_s * scale,
            mean_rotation_s: reference.mean_rotation_s * scale,
            fixed_s: reference.fixed_s * scale,
            source: "live".to_string(),
        })
    }

    /// Re-parameterizes `base` so that [`DiskServiceModel::from_params`]
    /// of the result reproduces the fitted terms:
    ///
    /// * all four seek coefficients are scaled by one factor — the seek
    ///   curve is linear in them, so the integrated mean seek scales
    ///   exactly;
    /// * the revolution time becomes twice the fitted mean rotation;
    /// * transfer and controller overhead are scaled together to the
    ///   fitted fixed term.
    pub fn apply(&self, base: &SystemParams) -> SystemParams {
        let mut params = base.clone();
        let reference = DiskServiceModel::from_params(&base.disk);
        if reference.mean_seek_s > 0.0 {
            let scale = self.mean_seek_s / reference.mean_seek_s;
            params.disk.c1_ms *= scale;
            params.disk.c2_ms *= scale;
            params.disk.c3_ms *= scale;
            params.disk.c4_ms *= scale;
        }
        params.disk.revolution_time_s = 2.0 * self.mean_rotation_s;
        if reference.fixed_s > 0.0 {
            let scale = self.fixed_s / reference.fixed_s;
            params.disk.transfer_ms *= scale;
            params.disk.controller_overhead_ms *= scale;
        }
        params
    }

    /// Renders the calibration as one-line JSON (the `calibration.json`
    /// schema; `mean_service_s` is included redundantly for readers that
    /// only need the total).
    pub fn to_json(&self) -> String {
        let mut o = ObjWriter::new();
        o.field_u64("schema", CALIBRATION_SCHEMA);
        o.field_str("source", &self.source);
        o.field_u64("samples", self.samples);
        o.field_f64("mean_seek_s", self.mean_seek_s);
        o.field_f64("mean_rotation_s", self.mean_rotation_s);
        o.field_f64("fixed_s", self.fixed_s);
        o.field_f64("mean_service_s", self.mean_service_s());
        o.finish()
    }

    /// Parses [`Self::to_json`] output.
    ///
    /// # Errors
    ///
    /// Returns a message on malformed JSON, a missing field, or an
    /// unknown schema version.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let doc = json::parse(text)?;
        let schema = doc
            .get("schema")
            .and_then(Value::as_u64)
            .ok_or("calibration: missing schema")?;
        if schema != CALIBRATION_SCHEMA {
            return Err(format!("calibration: unsupported schema {schema}"));
        }
        let num = |key: &str| {
            doc.get(key)
                .and_then(Value::as_f64)
                .ok_or_else(|| format!("calibration: missing {key}"))
        };
        Ok(Self {
            samples: doc
                .get("samples")
                .and_then(Value::as_u64)
                .ok_or("calibration: missing samples")?,
            mean_seek_s: num("mean_seek_s")?,
            mean_rotation_s: num("mean_rotation_s")?,
            fixed_s: num("fixed_s")?,
            source: doc
                .get("source")
                .and_then(Value::as_str)
                .ok_or("calibration: missing source")?
                .to_string(),
        })
    }

    /// The conventional location beside a store directory.
    pub fn path_for(store_dir: &Path) -> PathBuf {
        store_dir.join("calibration.json")
    }

    /// Writes `calibration.json` (trailing newline, overwriting).
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json() + "\n")
    }

    /// Reads and parses a calibration file.
    ///
    /// # Errors
    ///
    /// Returns a message when the file is unreadable or malformed.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        Self::from_json(text.trim_end())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sqda_simkernel::DiskParams;

    fn service_event(seek_ns: u64, rotation_ns: u64, transfer_ns: u64) -> Event {
        Event::DiskService {
            query: 0,
            disk: 0,
            cylinder: 10,
            level: 1,
            queue_ns: 0,
            seek_ns,
            rotation_ns,
            transfer_ns,
            queue_depth: 0,
        }
    }

    #[test]
    fn fit_from_events_averages_components() {
        let events = vec![
            (0, service_event(8_000_000, 7_000_000, 2_000_000)),
            (1, Event::QueryArrive { query: 0 }),
            (2, service_event(4_000_000, 9_000_000, 2_000_000)),
        ];
        let cal = DeviceCalibration::fit_from_events(&events).unwrap();
        assert_eq!(cal.samples, 2);
        assert!((cal.mean_seek_s - 0.006).abs() < 1e-12);
        assert!((cal.mean_rotation_s - 0.008).abs() < 1e-12);
        assert!((cal.fixed_s - 0.002).abs() < 1e-12);
        assert_eq!(cal.source, "trace");
        assert!(DeviceCalibration::fit_from_events(&[]).is_none());
    }

    #[test]
    fn fit_from_totals_apportions_by_reference() {
        let reference = DiskServiceModel {
            mean_seek_s: 0.008,
            mean_rotation_s: 0.007,
            fixed_s: 0.001,
        };
        // Observed mean service 32 ms = 2× the reference's 16 ms.
        let cal = DeviceCalibration::fit_from_totals(100, 3_200_000_000, &reference).unwrap();
        assert_eq!(cal.samples, 100);
        assert!((cal.mean_seek_s - 0.016).abs() < 1e-12);
        assert!((cal.mean_rotation_s - 0.014).abs() < 1e-12);
        assert!((cal.fixed_s - 0.002).abs() < 1e-12);
        assert_eq!(cal.source, "live");
        assert!(DeviceCalibration::fit_from_totals(0, 0, &reference).is_none());
    }

    #[test]
    fn apply_reproduces_fitted_terms_exactly() {
        let cal = DeviceCalibration {
            samples: 500,
            mean_seek_s: 0.004,
            mean_rotation_s: 0.009,
            fixed_s: 0.003,
            source: "trace".to_string(),
        };
        let base = SystemParams::with_disks(8);
        let applied = cal.apply(&base);
        let model = DiskServiceModel::from_params(&applied.disk);
        // Seek scaling is exact (the curve is linear in c1..c4).
        assert!((model.mean_seek_s - 0.004).abs() < 1e-12, "{model:?}");
        assert!((model.mean_rotation_s - 0.009).abs() < 1e-15);
        assert!((model.fixed_s - 0.003).abs() < 1e-15);
        // Non-disk parameters are untouched.
        assert_eq!(applied.num_disks, 8);
        assert_eq!(applied.query_startup_s, base.query_startup_s);
        assert_eq!(applied.disk.num_cylinders, DiskParams::default().num_cylinders);
    }

    #[test]
    fn json_round_trip() {
        let cal = DeviceCalibration {
            samples: 42,
            mean_seek_s: 0.0065,
            mean_rotation_s: 0.00745,
            fixed_s: 0.002,
            source: "live".to_string(),
        };
        let text = cal.to_json();
        assert!(text.starts_with(r#"{"schema":1,"source":"live","samples":42,"#));
        let back = DeviceCalibration::from_json(&text).unwrap();
        assert_eq!(back, cal);
        let doc = json::parse(&text).unwrap();
        let total = doc.get("mean_service_s").unwrap().as_f64().unwrap();
        assert!((total - cal.mean_service_s()).abs() < 1e-15);
    }

    #[test]
    fn from_json_rejects_bad_documents() {
        assert!(DeviceCalibration::from_json("{").is_err());
        assert!(DeviceCalibration::from_json(r#"{"schema":9}"#).is_err());
        assert!(
            DeviceCalibration::from_json(r#"{"schema":1,"source":"x","samples":1}"#).is_err()
        );
    }

    #[test]
    fn save_load_round_trip() {
        let dir = std::env::temp_dir().join(format!("sqda-cal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = DeviceCalibration::path_for(&dir);
        let cal = DeviceCalibration {
            samples: 7,
            mean_seek_s: 0.005,
            mean_rotation_s: 0.006,
            fixed_s: 0.001,
            source: "trace".to_string(),
        };
        cal.save(&path).unwrap();
        assert_eq!(DeviceCalibration::load(&path).unwrap(), cal);
        std::fs::remove_dir_all(&dir).ok();
        assert!(DeviceCalibration::load(&path).is_err());
    }
}
