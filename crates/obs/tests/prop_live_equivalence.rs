//! Property: the sharded lock-free [`LiveHistogram`] is *exactly*
//! equivalent to the single-threaded [`Histogram`] — not statistically,
//! byte-for-byte. Any partition of a sample set across any number of
//! writer threads must snapshot to the same bucket counts, count, sum,
//! min and max as observing the samples sequentially.
//!
//! Samples are drawn integer-valued so floating-point addition is exact
//! under every summation order; with that, `Histogram`'s derived
//! `PartialEq` pins the whole snapshot.
//!
//! (This file needs the `proptest` crate, so it runs under `cargo test`
//! only — the offline stub runner skips `prop_*.rs` targets.)

use proptest::prelude::*;
use sqda_obs::metrics::{Histogram, DEPTH_BOUNDS, TIME_MS_BOUNDS};
use sqda_obs::{LiveCounter, LiveHistogram};
use std::sync::Arc;

/// Observes `chunks` of samples from one thread per chunk.
fn observe_threaded(bounds: &'static [f64], chunks: &[Vec<f64>]) -> Histogram {
    let live = Arc::new(LiveHistogram::new(bounds));
    std::thread::scope(|s| {
        for chunk in chunks {
            let live = Arc::clone(&live);
            s.spawn(move || {
                for &v in chunk {
                    live.observe(v);
                }
            });
        }
    });
    live.snapshot()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn threaded_histogram_equals_sequential(
        samples in proptest::collection::vec(0u32..6_000_000u32, 1..800),
        threads in 1usize..8,
    ) {
        // Integer-valued ms samples spanning every TIME_MS_BOUNDS
        // bucket including the overflow bucket (bounds top out at 5000).
        let samples: Vec<f64> = samples.iter().map(|&v| (v / 1000) as f64).collect();
        let mut reference = Histogram::new(TIME_MS_BOUNDS);
        for &v in &samples {
            reference.observe(v);
        }
        let chunk = samples.len().div_ceil(threads);
        let chunks: Vec<Vec<f64>> = samples.chunks(chunk).map(<[f64]>::to_vec).collect();
        let live = observe_threaded(TIME_MS_BOUNDS, &chunks);
        prop_assert_eq!(&live, &reference);
        prop_assert_eq!(live.count(), samples.len() as u64);
    }

    #[test]
    fn partitioning_is_irrelevant(
        samples in proptest::collection::vec(0u32..64u32, 1..300),
        split in 1usize..6,
    ) {
        // The same samples under two different thread partitions agree
        // with each other (depth-style small-integer values).
        let samples: Vec<f64> = samples.iter().map(|&v| v as f64).collect();
        let one = observe_threaded(DEPTH_BOUNDS, &[samples.clone()]);
        let chunk = samples.len().div_ceil(split);
        let chunks: Vec<Vec<f64>> = samples.chunks(chunk).map(<[f64]>::to_vec).collect();
        let many = observe_threaded(DEPTH_BOUNDS, &chunks);
        prop_assert_eq!(one, many);
    }

    #[test]
    fn concurrent_counter_adds_are_lossless(
        adds in proptest::collection::vec(0u64..10_000u64, 1..200),
        threads in 1usize..8,
    ) {
        let counter = Arc::new(LiveCounter::new());
        let chunk = adds.len().div_ceil(threads);
        std::thread::scope(|s| {
            for ch in adds.chunks(chunk) {
                let counter = Arc::clone(&counter);
                s.spawn(move || {
                    for &n in ch {
                        counter.add(n);
                    }
                });
            }
        });
        prop_assert_eq!(counter.get(), adds.iter().sum::<u64>());
    }
}
