//! Run provenance: the `RunManifest` written next to every results file.
//!
//! A results CSV/JSON on its own says nothing about how it was produced.
//! The manifest records everything needed to reproduce it — git revision,
//! master seed and derived replication seeds, the full parameter set, the
//! replication count, crate version, and wall-clock — as one small JSON
//! file named `<bench>.manifest.json` in the same directory.

use crate::json::{u64_array, write_str, ObjWriter};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::time::{SystemTime, UNIX_EPOCH};

/// Provenance record for one experiment-bin invocation.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunManifest {
    /// Bench/bin name, e.g. `fig10_resp_vs_lambda`.
    pub bench: String,
    /// Git commit the binary was produced from (`SQDA_GIT_SHA` override,
    /// else discovered from `.git/HEAD`; `"unknown"` outside a checkout).
    pub git_sha: String,
    /// Version of the bench crate (`CARGO_PKG_VERSION` of the caller).
    pub crate_version: String,
    /// Master seed the replication streams were derived from.
    pub master_seed: u64,
    /// Per-replication seeds actually used (stream 0 first).
    pub rep_seeds: Vec<u64>,
    /// Number of replications per data point.
    pub reps: u32,
    /// Warm-up fraction deleted from each response-time series.
    pub warmup_fraction: f64,
    /// Full parameter set, in insertion order (`key`, `value` pairs).
    pub params: Vec<(String, String)>,
    /// Wall-clock duration of the run in seconds.
    pub wall_s: f64,
    /// Unix timestamp (seconds) the manifest was written; 0 until then.
    pub created_unix: u64,
}

impl RunManifest {
    /// Starts a manifest for `bench`, discovering the git revision.
    pub fn new(bench: &str) -> Self {
        Self {
            bench: bench.to_string(),
            git_sha: discover_git_sha(),
            ..Self::default()
        }
    }

    /// Records one parameter (builder-style).
    pub fn param(mut self, key: &str, value: impl ToString) -> Self {
        self.params.push((key.to_string(), value.to_string()));
        self
    }

    /// Serializes to JSON. Deterministic except for `created_unix`.
    pub fn to_json(&self) -> String {
        let mut params = String::from("{");
        for (i, (k, v)) in self.params.iter().enumerate() {
            if i > 0 {
                params.push(',');
            }
            write_str(&mut params, k);
            params.push(':');
            write_str(&mut params, v);
        }
        params.push('}');
        let mut w = ObjWriter::new();
        w.field_str("bench", &self.bench);
        w.field_str("git_sha", &self.git_sha);
        w.field_str("crate_version", &self.crate_version);
        w.field_u64("master_seed", self.master_seed);
        w.field_raw("rep_seeds", &u64_array(&self.rep_seeds));
        w.field_u64("reps", u64::from(self.reps));
        w.field_f64("warmup_fraction", self.warmup_fraction);
        w.field_raw("params", &params);
        w.field_f64("wall_s", self.wall_s);
        w.field_u64("created_unix", self.created_unix);
        w.finish()
    }

    /// Stamps `created_unix` and writes `<dir>/<bench>.manifest.json`,
    /// returning the path written.
    pub fn write(&mut self, dir: &Path) -> io::Result<PathBuf> {
        self.created_unix = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0);
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.manifest.json", self.bench));
        fs::write(&path, self.to_json() + "\n")?;
        Ok(path)
    }
}

/// Best-effort git revision discovery: `SQDA_GIT_SHA` wins (CI sets it
/// when the checkout is shallow or absent), else walk from the current
/// directory upward for a `.git/HEAD` and chase one level of symbolic
/// ref. Returns `"unknown"` when nothing resolves.
pub fn discover_git_sha() -> String {
    if let Ok(sha) = std::env::var("SQDA_GIT_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    let mut dir = match std::env::current_dir() {
        Ok(d) => d,
        Err(_) => return "unknown".to_string(),
    };
    loop {
        let head = dir.join(".git").join("HEAD");
        if let Ok(contents) = fs::read_to_string(&head) {
            let contents = contents.trim();
            if let Some(r) = contents.strip_prefix("ref: ") {
                // Plain ref file, then packed-refs.
                if let Ok(sha) = fs::read_to_string(dir.join(".git").join(r)) {
                    return sha.trim().to_string();
                }
                if let Ok(packed) = fs::read_to_string(dir.join(".git").join("packed-refs")) {
                    for line in packed.lines() {
                        if let Some(sha) = line.strip_suffix(r) {
                            return sha.trim().to_string();
                        }
                    }
                }
                return "unknown".to_string();
            }
            return contents.to_string();
        }
        if !dir.pop() {
            return "unknown".to_string();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manifest_json_shape() {
        let mut m = RunManifest::new("fig99_demo")
            .param("disks", 10)
            .param("dataset", "california-like");
        m.crate_version = "0.1.0".to_string();
        m.master_seed = 4242;
        m.rep_seeds = vec![4242, 7, 8];
        m.reps = 3;
        m.warmup_fraction = 0.1;
        m.wall_s = 1.5;
        let j = m.to_json();
        assert!(j.starts_with("{\"bench\":\"fig99_demo\""), "{j}");
        assert!(j.contains("\"master_seed\":4242"), "{j}");
        assert!(j.contains("\"rep_seeds\":[4242,7,8]"), "{j}");
        assert!(j.contains("\"reps\":3"), "{j}");
        assert!(j.contains("\"warmup_fraction\":0.1"), "{j}");
        assert!(j.contains("\"params\":{\"disks\":\"10\",\"dataset\":\"california-like\"}"), "{j}");
        // Round-trips through the in-crate parser.
        let v = crate::json::parse(&j).expect("valid json");
        assert_eq!(v.get("bench").and_then(|b| b.as_str()), Some("fig99_demo"));
        assert_eq!(v.get("reps").and_then(|r| r.as_u64()), Some(3));
    }

    #[test]
    fn write_emits_named_file_and_stamps_time() {
        let dir = std::env::temp_dir().join("sqda_manifest_test");
        let _ = fs::remove_dir_all(&dir);
        let mut m = RunManifest::new("unit_test_bench");
        let path = m.write(&dir).expect("write manifest");
        assert!(path.ends_with("unit_test_bench.manifest.json"));
        assert!(m.created_unix > 0);
        let text = fs::read_to_string(&path).expect("readable");
        let v = crate::json::parse(text.trim()).expect("valid json");
        assert_eq!(
            v.get("bench").and_then(|b| b.as_str()),
            Some("unit_test_bench")
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn git_sha_resolves_in_this_checkout() {
        // The repo itself is a git checkout, so discovery should find a
        // 40-hex sha here (or honour an explicit override).
        let sha = discover_git_sha();
        assert!(!sha.is_empty());
        if sha != "unknown" {
            assert!(
                sha.len() >= 7 && sha.chars().all(|c| c.is_ascii_hexdigit()),
                "suspicious sha {sha}"
            );
        }
    }
}
