//! Metrics registry: counters, gauges and fixed-bucket histograms, plus
//! the [`MetricsSnapshot`] folded from a recorded event stream.
//!
//! The histograms use fixed, pre-declared bucket upper bounds (in
//! milliseconds for time distributions) rather than adaptive binning, so
//! snapshots from different runs are directly comparable and merging is
//! a per-bucket add.

use crate::event::Event;
use crate::json::{f64_array, u64_array, ObjWriter};
use sqda_storage::IoStats;
use std::collections::BTreeMap;

/// A monotone event count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(pub u64);

impl Counter {
    /// Adds `n` to the count.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }
}

/// A point-in-time value (last write wins).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Gauge(pub f64);

impl Gauge {
    /// Overwrites the value.
    pub fn set(&mut self, v: f64) {
        self.0 = v;
    }
}

/// A fixed-bucket histogram: `bounds[i]` is the inclusive upper bound of
/// bucket `i`; one implicit overflow bucket catches the rest. Tracks
/// count/sum/min/max alongside the buckets so means and ranges survive
/// the bucketing.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: &'static [f64],
    buckets: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

/// Bucket bounds (ms) for component time distributions — spans queueing
/// delays from microseconds to the multi-second saturation regime of the
/// paper's high-λ runs.
pub const TIME_MS_BOUNDS: &[f64] = &[
    0.01, 0.05, 0.1, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0,
    5000.0,
];

/// Bucket bounds for queue-depth distributions.
pub const DEPTH_BOUNDS: &[f64] = &[
    0.0, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 12.0, 16.0, 24.0, 32.0, 64.0, 128.0,
];

impl Histogram {
    /// Creates an empty histogram over the given static bounds.
    pub fn new(bounds: &'static [f64]) -> Self {
        Self {
            bounds,
            buckets: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, v: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Assembles a histogram from already-aggregated parts (the
    /// snapshot path of the live atomic histograms, which count into
    /// identical buckets and merge shard-by-shard).
    pub(crate) fn from_raw(
        bounds: &'static [f64],
        buckets: Vec<u64>,
        count: u64,
        sum: f64,
        min: f64,
        max: f64,
    ) -> Self {
        assert_eq!(buckets.len(), bounds.len() + 1, "bucket/bound mismatch");
        Self {
            bounds,
            buckets,
            count,
            sum,
            min,
            max,
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of observations (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Largest observation (0 when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Per-bucket counts; the final entry is the overflow bucket.
    pub fn buckets(&self) -> &[u64] {
        &self.buckets
    }

    /// Bucket upper bounds.
    pub fn bounds(&self) -> &'static [f64] {
        self.bounds
    }

    /// The value range the `q`-quantile of the recorded observations is
    /// guaranteed to lie in, `(lower, upper)`, under the same
    /// linear-interpolation rank convention the real-clock engine uses
    /// for its percentiles (`rank = q * (count - 1)`). The interpolated
    /// percentile sits between the floor-rank and ceil-rank order
    /// statistics, so the bracket spans from the lower edge of the
    /// bucket holding the floor rank to the upper edge of the bucket
    /// holding the ceil rank (tightened by the recorded min/max).
    /// Returns `(0.0, 0.0)` when empty.
    pub fn quantile_bracket(&self, q: f64) -> (f64, f64) {
        if self.count == 0 {
            return (0.0, 0.0);
        }
        let pos = q.clamp(0.0, 1.0) * (self.count - 1) as f64;
        let bucket_of = |rank: u64| -> usize {
            let mut cum = 0u64;
            for (i, &b) in self.buckets.iter().enumerate() {
                cum += b;
                if cum > rank {
                    return i;
                }
            }
            self.buckets.len() - 1
        };
        let lo_bucket = bucket_of(pos.floor() as u64);
        let hi_bucket = bucket_of(pos.ceil() as u64);
        let lower = if lo_bucket == 0 {
            self.min
        } else {
            self.bounds[lo_bucket - 1]
        };
        let upper = if hi_bucket == self.bounds.len() {
            self.max
        } else {
            self.bounds[hi_bucket].min(self.max)
        };
        (lower, upper)
    }

    /// Adds another histogram's observations into this one. Panics if
    /// the bucket bounds differ — merging across schemas is a bug.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            std::ptr::eq(self.bounds, other.bounds) || self.bounds == other.bounds,
            "histogram bound mismatch"
        );
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    fn to_json(&self) -> String {
        let mut o = ObjWriter::new();
        o.field_u64("count", self.count);
        o.field_f64("mean", self.mean());
        o.field_f64("min", if self.count == 0 { 0.0 } else { self.min });
        o.field_f64("max", self.max());
        o.field_raw("bounds", &f64_array(self.bounds));
        o.field_raw("buckets", &u64_array(&self.buckets));
        o.finish()
    }
}

/// Per-disk aggregates folded from `disk_service` events.
#[derive(Debug, Clone)]
pub struct DiskMetrics {
    /// Requests served.
    pub requests: Counter,
    /// Busy (seek+rotation+transfer) simulated time, ns.
    pub busy_ns: Counter,
    /// Time-in-queue distribution, ms.
    pub queue_time_ms: Histogram,
    /// Queue depth seen at each submission.
    pub queue_depth: Histogram,
}

impl DiskMetrics {
    pub(crate) fn new() -> Self {
        Self {
            requests: Counter::default(),
            busy_ns: Counter::default(),
            queue_time_ms: Histogram::new(TIME_MS_BOUNDS),
            queue_depth: Histogram::new(DEPTH_BOUNDS),
        }
    }
}

/// Everything the metrics layer knows after a run: component
/// distributions per disk, bus/CPU aggregates, per-query response
/// times, and cache behaviour folded from the store's [`IoStats`].
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Queries that arrived.
    pub queries_arrived: Counter,
    /// Queries that completed.
    pub queries_completed: Counter,
    /// Response-time distribution, ms.
    pub response_ms: Histogram,
    /// Per-disk metrics, keyed by disk index.
    pub disks: BTreeMap<u16, DiskMetrics>,
    /// Bus queueing-delay distribution, ms.
    pub bus_queue_ms: Histogram,
    /// Total bus busy time, ns.
    pub bus_busy_ns: Counter,
    /// CPU queueing-delay distribution, ms.
    pub cpu_queue_ms: Histogram,
    /// Total CPU busy time, ns.
    pub cpu_busy_ns: Counter,
    /// Fetch-batch size distribution.
    pub batch_size: Histogram,
    /// Page-cache hits (from the store).
    pub cache_hits: Counter,
    /// Page-cache misses (from the store).
    pub cache_misses: Counter,
    /// Physical reads per disk as reported by the store (includes
    /// requests the simulator never timed, e.g. tree builds).
    pub store_reads_per_disk: Vec<u64>,
    /// Reads served by a shadow replica because the primary was failed.
    pub degraded_reads: Counter,
    /// Re-probes of pages with no live replica.
    pub read_retries: Counter,
    /// Queries aborted after exhausting the retry budget.
    pub queries_aborted: Counter,
    /// Per-disk time spent failed or in a degraded window, ns.
    /// Failure spans without a recorded recovery are closed at the last
    /// event timestamp in the stream.
    pub disk_degraded_ns: BTreeMap<u16, u64>,
}

impl Default for MetricsSnapshot {
    fn default() -> Self {
        Self::new()
    }
}

impl MetricsSnapshot {
    /// Creates an empty snapshot.
    pub fn new() -> Self {
        Self {
            queries_arrived: Counter::default(),
            queries_completed: Counter::default(),
            response_ms: Histogram::new(TIME_MS_BOUNDS),
            disks: BTreeMap::new(),
            bus_queue_ms: Histogram::new(TIME_MS_BOUNDS),
            bus_busy_ns: Counter::default(),
            cpu_queue_ms: Histogram::new(TIME_MS_BOUNDS),
            cpu_busy_ns: Counter::default(),
            batch_size: Histogram::new(DEPTH_BOUNDS),
            cache_hits: Counter::default(),
            cache_misses: Counter::default(),
            store_reads_per_disk: Vec::new(),
            degraded_reads: Counter::default(),
            read_retries: Counter::default(),
            queries_aborted: Counter::default(),
            disk_degraded_ns: BTreeMap::new(),
        }
    }

    /// Folds a recorded event stream into a snapshot.
    pub fn from_events(events: &[(u64, Event)]) -> Self {
        let mut s = Self::new();
        let max_ts = events.iter().map(|&(ts, _)| ts).max().unwrap_or(0);
        let mut open_failures: BTreeMap<u16, u64> = BTreeMap::new();
        for &(ts, ref ev) in events {
            match *ev {
                Event::QueryArrive { .. } => s.queries_arrived.add(1),
                Event::QueryComplete { response_ns, .. } => {
                    s.queries_completed.add(1);
                    s.response_ms.observe(response_ns as f64 / 1e6);
                }
                Event::BatchIssued { size, .. } => {
                    s.batch_size.observe(size as f64);
                }
                Event::DiskService {
                    disk,
                    queue_ns,
                    seek_ns,
                    rotation_ns,
                    transfer_ns,
                    queue_depth,
                    ..
                } => {
                    let d = s.disks.entry(disk).or_insert_with(DiskMetrics::new);
                    d.requests.add(1);
                    d.busy_ns.add(seek_ns + rotation_ns + transfer_ns);
                    d.queue_time_ms.observe(queue_ns as f64 / 1e6);
                    d.queue_depth.observe(queue_depth as f64);
                }
                Event::BusTransfer {
                    queue_ns,
                    transfer_ns,
                    ..
                } => {
                    s.bus_queue_ms.observe(queue_ns as f64 / 1e6);
                    s.bus_busy_ns.add(transfer_ns);
                }
                Event::CpuSlice {
                    queue_ns, exec_ns, ..
                } => {
                    s.cpu_queue_ms.observe(queue_ns as f64 / 1e6);
                    s.cpu_busy_ns.add(exec_ns);
                }
                Event::CrssState { .. } => {}
                Event::DiskFailed { disk } => {
                    open_failures.entry(disk).or_insert(ts);
                }
                Event::DiskRecovered { disk } => {
                    if let Some(start) = open_failures.remove(&disk) {
                        *s.disk_degraded_ns.entry(disk).or_insert(0) +=
                            ts.saturating_sub(start);
                    }
                }
                Event::DiskDegraded { disk, until_ns, .. } => {
                    *s.disk_degraded_ns.entry(disk).or_insert(0) +=
                        until_ns.saturating_sub(ts);
                }
                Event::DegradedRead { .. } => s.degraded_reads.add(1),
                Event::ReadRetry { .. } => s.read_retries.add(1),
                Event::QueryAbort { .. } => s.queries_aborted.add(1),
            }
        }
        // Permanent failures stay degraded through the end of the run.
        for (disk, start) in open_failures {
            *s.disk_degraded_ns.entry(disk).or_insert(0) += max_ts.saturating_sub(start);
        }
        s
    }

    /// Folds the store's I/O accounting (cache behaviour, physical read
    /// placement) into the snapshot.
    pub fn fold_io_stats(&mut self, io: &IoStats) {
        self.cache_hits.add(io.cache_hits);
        self.cache_misses.add(io.cache_misses);
        self.store_reads_per_disk = io.reads_per_disk.clone();
    }

    /// Coefficient of variation of per-disk *timed* request counts: 0
    /// for a perfectly balanced array, growing with skew. Uses the
    /// simulator's own request counts, not the store's, so it reflects
    /// exactly the traffic the queueing model saw.
    pub fn load_imbalance(&self) -> f64 {
        let counts: Vec<f64> = self.disks.values().map(|d| d.requests.0 as f64).collect();
        if counts.is_empty() {
            return 0.0;
        }
        let mean = counts.iter().sum::<f64>() / counts.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = counts.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / counts.len() as f64;
        var.sqrt() / mean
    }

    /// Cache hit ratio in [0,1]; 0 when no accesses were folded in.
    pub fn cache_hit_ratio(&self) -> f64 {
        let total = self.cache_hits.0 + self.cache_misses.0;
        if total == 0 {
            0.0
        } else {
            self.cache_hits.0 as f64 / total as f64
        }
    }

    /// Renders the snapshot as a pretty-stable JSON document (disk keys
    /// sorted, canonical field order).
    pub fn to_json(&self) -> String {
        let mut o = ObjWriter::new();
        o.field_u64("queries_arrived", self.queries_arrived.0);
        o.field_u64("queries_completed", self.queries_completed.0);
        o.field_raw("response_ms", &self.response_ms.to_json());
        o.field_f64("load_imbalance", self.load_imbalance());
        o.field_u64("cache_hits", self.cache_hits.0);
        o.field_u64("cache_misses", self.cache_misses.0);
        o.field_f64("cache_hit_ratio", self.cache_hit_ratio());
        o.field_raw(
            "store_reads_per_disk",
            &u64_array(&self.store_reads_per_disk),
        );
        o.field_raw("batch_size", &self.batch_size.to_json());
        o.field_raw("bus_queue_ms", &self.bus_queue_ms.to_json());
        o.field_u64("bus_busy_ns", self.bus_busy_ns.0);
        o.field_raw("cpu_queue_ms", &self.cpu_queue_ms.to_json());
        o.field_u64("cpu_busy_ns", self.cpu_busy_ns.0);
        o.field_u64("degraded_reads", self.degraded_reads.0);
        o.field_u64("read_retries", self.read_retries.0);
        o.field_u64("queries_aborted", self.queries_aborted.0);
        let mut degraded = String::from("{");
        for (i, (id, ns)) in self.disk_degraded_ns.iter().enumerate() {
            if i > 0 {
                degraded.push(',');
            }
            degraded.push_str(&format!("\"{id}\":{ns}"));
        }
        degraded.push('}');
        o.field_raw("disk_degraded_ns", &degraded);
        let mut disks = String::from("{");
        for (i, (id, d)) in self.disks.iter().enumerate() {
            if i > 0 {
                disks.push(',');
            }
            let mut dd = ObjWriter::new();
            dd.field_u64("requests", d.requests.0);
            dd.field_u64("busy_ns", d.busy_ns.0);
            dd.field_raw("queue_time_ms", &d.queue_time_ms.to_json());
            dd.field_raw("queue_depth", &d.queue_depth.to_json());
            disks.push_str(&format!("\"{id}\":{}", dd.finish()));
        }
        disks.push('}');
        o.field_raw("disks", &disks);
        o.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = Histogram::new(TIME_MS_BOUNDS);
        h.observe(0.005); // bucket 0 (≤0.01)
        h.observe(0.5); // ≤0.5
        h.observe(9_999.0); // overflow
        assert_eq!(h.count(), 3);
        assert!((h.mean() - (0.005 + 0.5 + 9_999.0) / 3.0).abs() < 1e-9);
        assert_eq!(h.max(), 9_999.0);
        assert_eq!(h.buckets()[0], 1);
        assert_eq!(h.buckets()[TIME_MS_BOUNDS.len()], 1);
        let mut h2 = Histogram::new(TIME_MS_BOUNDS);
        h2.observe(0.005);
        h.merge(&h2);
        assert_eq!(h.count(), 4);
        assert_eq!(h.buckets()[0], 2);
    }

    #[test]
    #[should_panic(expected = "histogram bound mismatch")]
    fn merge_rejects_mismatched_bounds() {
        let mut h = Histogram::new(TIME_MS_BOUNDS);
        h.merge(&Histogram::new(DEPTH_BOUNDS));
    }

    fn disk_event(disk: u16, queue_ns: u64) -> (u64, Event) {
        (
            0,
            Event::DiskService {
                query: 0,
                disk,
                cylinder: 0,
                level: 0,
                queue_ns,
                seek_ns: 1_000_000,
                rotation_ns: 1_000_000,
                transfer_ns: 1_000_000,
                queue_depth: (queue_ns / 1_000_000) as u32,
            },
        )
    }

    #[test]
    fn balanced_vs_skewed_imbalance() {
        // Round-robin: 4 requests over 4 disks.
        let balanced: Vec<_> = (0..4u16).map(|d| disk_event(d, 0)).collect();
        let sb = MetricsSnapshot::from_events(&balanced);
        assert_eq!(sb.load_imbalance(), 0.0);

        // All 4 on one disk of the 4 (the other disks appear once so
        // the denominator matches).
        let mut skewed: Vec<_> = (0..4u16).map(|d| disk_event(d, 0)).collect();
        for _ in 0..12 {
            skewed.push(disk_event(0, 0));
        }
        let ss = MetricsSnapshot::from_events(&skewed);
        assert!(
            ss.load_imbalance() > 1.0,
            "skewed CV = {}",
            ss.load_imbalance()
        );
        assert!(ss.load_imbalance() > sb.load_imbalance());
    }

    #[test]
    fn snapshot_folds_fault_events() {
        let events = vec![
            (1_000, Event::DiskFailed { disk: 0 }),
            (6_000, Event::DiskRecovered { disk: 0 }),
            (2_000, Event::DiskFailed { disk: 1 }), // permanent
            (
                3_000,
                Event::DiskDegraded {
                    disk: 2,
                    until_ns: 8_000,
                    multiplier: 2.0,
                    extra_ns: 0,
                },
            ),
            (
                4_000,
                Event::DegradedRead {
                    query: 0,
                    disk: 0,
                    replica: 2,
                },
            ),
            (
                5_000,
                Event::ReadRetry {
                    query: 1,
                    disk: 1,
                    attempt: 1,
                },
            ),
            (
                10_000,
                Event::QueryAbort {
                    query: 1,
                    disk: 1,
                    attempts: 3,
                },
            ),
        ];
        let s = MetricsSnapshot::from_events(&events);
        assert_eq!(s.degraded_reads.0, 1);
        assert_eq!(s.read_retries.0, 1);
        assert_eq!(s.queries_aborted.0, 1);
        assert_eq!(s.disk_degraded_ns.get(&0), Some(&5_000)); // closed by recovery
        assert_eq!(s.disk_degraded_ns.get(&1), Some(&8_000)); // closed at last ts
        assert_eq!(s.disk_degraded_ns.get(&2), Some(&5_000)); // window length
        let doc = parse(&s.to_json()).unwrap();
        assert_eq!(doc.get("degraded_reads").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("queries_aborted").unwrap().as_u64(), Some(1));
        let deg = doc.get("disk_degraded_ns").unwrap();
        assert_eq!(deg.get("1").unwrap().as_u64(), Some(8_000));
    }

    #[test]
    fn snapshot_folds_events_and_renders_json() {
        let events = vec![
            (0, Event::QueryArrive { query: 0 }),
            disk_event(0, 2_000_000),
            (
                5_000_000,
                Event::QueryComplete {
                    query: 0,
                    response_ns: 5_000_000,
                    nodes: 1,
                    batches: 1,
                    disk_queue_ns: 2_000_000,
                    seek_ns: 1_000_000,
                    rotation_ns: 1_000_000,
                    transfer_ns: 1_000_000,
                    bus_queue_ns: 0,
                    bus_ns: 400_000,
                    cpu_queue_ns: 0,
                    cpu_ns: 100_000,
                },
            ),
        ];
        let mut s = MetricsSnapshot::from_events(&events);
        let io = IoStats {
            reads: 10,
            writes: 0,
            reads_per_disk: vec![10],
            writes_per_disk: vec![0],
            cache_hits: 3,
            cache_misses: 7,
            ..IoStats::default()
        };
        s.fold_io_stats(&io);
        assert_eq!(s.queries_completed.0, 1);
        assert!((s.cache_hit_ratio() - 0.3).abs() < 1e-12);
        let d0 = s.disks.get(&0).unwrap();
        assert_eq!(d0.requests.0, 1);
        assert_eq!(d0.busy_ns.0, 3_000_000);
        assert_eq!(d0.queue_time_ms.count(), 1);

        let doc = parse(&s.to_json()).unwrap();
        assert_eq!(doc.get("queries_completed").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("cache_hits").unwrap().as_u64(), Some(3));
        let disks = doc.get("disks").unwrap();
        let dj = disks.get("0").unwrap();
        assert_eq!(dj.get("requests").unwrap().as_u64(), Some(1));
        assert!(dj.get("queue_depth").unwrap().get("buckets").is_some());
    }
}
