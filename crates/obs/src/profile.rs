//! Per-query profiles: everything one query did, folded from the event
//! stream — node counts per tree level, response-time component
//! breakdown, and the CRSS threshold trajectory when present.

use crate::event::{Event, QueryId};
use crate::json::{f64_array, u64_array, ObjWriter};
use std::collections::BTreeMap;

/// The component breakdown of one query's response time. Components are
/// summed over the query's requests and can overlap in wall-clock time
/// (parallel disk fetches), so they add up to ≥ the critical path.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Breakdown {
    /// Time requests waited in disk queues, ns.
    pub disk_queue_ns: u64,
    /// Seek time, ns.
    pub seek_ns: u64,
    /// Rotational latency, ns.
    pub rotation_ns: u64,
    /// Platter transfer + controller overhead, ns.
    pub transfer_ns: u64,
    /// Time pages waited for the bus, ns.
    pub bus_queue_ns: u64,
    /// Bus transfer time, ns.
    pub bus_ns: u64,
    /// Time batches waited for a CPU, ns.
    pub cpu_queue_ns: u64,
    /// CPU execution time, ns.
    pub cpu_ns: u64,
}

/// One point of a CRSS query's threshold trajectory.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrssPoint {
    /// Simulated timestamp, ns.
    pub ts_ns: u64,
    /// Squared threshold distance (may be infinite early on).
    pub d_th_sq: f64,
    /// Runs on the candidate stack.
    pub stack_runs: u32,
    /// Saved candidates across all runs.
    pub stack_candidates: u32,
}

/// The profile of a single query, reconstructed from its events.
#[derive(Debug, Clone, Default)]
pub struct QueryProfile {
    /// Workload index.
    pub query: QueryId,
    /// Arrival timestamp, ns.
    pub arrive_ns: u64,
    /// Completion timestamp, ns (0 if the query never completed).
    pub complete_ns: u64,
    /// Arrival-to-completion response time, ns.
    pub response_ns: u64,
    /// Nodes fetched per tree level (index = level, root = 0).
    pub nodes_per_level: Vec<u64>,
    /// Fetch batches issued.
    pub batches: u32,
    /// Response-time component breakdown.
    pub breakdown: Breakdown,
    /// CRSS threshold/stack trajectory (empty for other algorithms).
    pub crss_trajectory: Vec<CrssPoint>,
}

impl QueryProfile {
    /// Total nodes fetched across all levels.
    pub fn total_nodes(&self) -> u64 {
        self.nodes_per_level.iter().sum()
    }

    /// Renders the profile as one JSON object.
    pub fn to_json(&self) -> String {
        let mut o = ObjWriter::new();
        o.field_u64("query", self.query as u64);
        o.field_u64("arrive_ns", self.arrive_ns);
        o.field_u64("complete_ns", self.complete_ns);
        o.field_u64("response_ns", self.response_ns);
        o.field_u64("batches", self.batches as u64);
        o.field_raw("nodes_per_level", &u64_array(&self.nodes_per_level));
        let b = &self.breakdown;
        let mut bo = ObjWriter::new();
        bo.field_u64("disk_queue_ns", b.disk_queue_ns);
        bo.field_u64("seek_ns", b.seek_ns);
        bo.field_u64("rotation_ns", b.rotation_ns);
        bo.field_u64("transfer_ns", b.transfer_ns);
        bo.field_u64("bus_queue_ns", b.bus_queue_ns);
        bo.field_u64("bus_ns", b.bus_ns);
        bo.field_u64("cpu_queue_ns", b.cpu_queue_ns);
        bo.field_u64("cpu_ns", b.cpu_ns);
        o.field_raw("breakdown", &bo.finish());
        if !self.crss_trajectory.is_empty() {
            let ts: Vec<u64> = self.crss_trajectory.iter().map(|p| p.ts_ns).collect();
            let d: Vec<f64> = self.crss_trajectory.iter().map(|p| p.d_th_sq).collect();
            let runs: Vec<u64> = self
                .crss_trajectory
                .iter()
                .map(|p| p.stack_runs as u64)
                .collect();
            let cands: Vec<u64> = self
                .crss_trajectory
                .iter()
                .map(|p| p.stack_candidates as u64)
                .collect();
            let mut t = ObjWriter::new();
            t.field_raw("ts_ns", &u64_array(&ts));
            t.field_raw("d_th_sq", &f64_array(&d));
            t.field_raw("stack_runs", &u64_array(&runs));
            t.field_raw("stack_candidates", &u64_array(&cands));
            o.field_raw("crss", &t.finish());
        }
        o.finish()
    }
}

/// Folds an event stream into per-query profiles, in query-index order.
pub fn query_profiles(events: &[(u64, Event)]) -> Vec<QueryProfile> {
    let mut map: BTreeMap<QueryId, QueryProfile> = BTreeMap::new();
    for &(ts, ref ev) in events {
        // Disk-level fault events belong to no query.
        let Some(q) = ev.query() else { continue };
        let p = map.entry(q).or_insert_with(|| QueryProfile {
            query: q,
            ..QueryProfile::default()
        });
        match *ev {
            Event::QueryArrive { .. } => p.arrive_ns = ts,
            Event::QueryComplete {
                response_ns,
                batches,
                disk_queue_ns,
                seek_ns,
                rotation_ns,
                transfer_ns,
                bus_queue_ns,
                bus_ns,
                cpu_queue_ns,
                cpu_ns,
                ..
            } => {
                p.complete_ns = ts;
                p.response_ns = response_ns;
                p.batches = batches;
                p.breakdown = Breakdown {
                    disk_queue_ns,
                    seek_ns,
                    rotation_ns,
                    transfer_ns,
                    bus_queue_ns,
                    bus_ns,
                    cpu_queue_ns,
                    cpu_ns,
                };
            }
            Event::DiskService { level, .. } => {
                let lvl = level as usize;
                if p.nodes_per_level.len() <= lvl {
                    p.nodes_per_level.resize(lvl + 1, 0);
                }
                p.nodes_per_level[lvl] += 1;
            }
            Event::CrssState {
                d_th_sq,
                stack_runs,
                stack_candidates,
                ..
            } => p.crss_trajectory.push(CrssPoint {
                ts_ns: ts,
                d_th_sq,
                stack_runs,
                stack_candidates,
            }),
            Event::BatchIssued { .. }
            | Event::BusTransfer { .. }
            | Event::CpuSlice { .. }
            | Event::DegradedRead { .. }
            | Event::ReadRetry { .. }
            | Event::QueryAbort { .. } => {}
            // Filtered by the query() guard above.
            Event::DiskFailed { .. } | Event::DiskRecovered { .. } | Event::DiskDegraded { .. } => {
            }
        }
    }
    map.into_values().collect()
}

/// Renders profiles as a JSONL document (one profile per line).
pub fn profiles_to_jsonl(profiles: &[QueryProfile]) -> String {
    let mut out = String::new();
    for p in profiles {
        out.push_str(&p.to_json());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn profiles_fold_levels_and_breakdown() {
        let events = vec![
            (100, Event::QueryArrive { query: 2 }),
            (
                200,
                Event::DiskService {
                    query: 2,
                    disk: 0,
                    cylinder: 0,
                    level: 0,
                    queue_ns: 1,
                    seek_ns: 2,
                    rotation_ns: 3,
                    transfer_ns: 4,
                    queue_depth: 0,
                },
            ),
            (
                300,
                Event::DiskService {
                    query: 2,
                    disk: 1,
                    cylinder: 0,
                    level: 2,
                    queue_ns: 1,
                    seek_ns: 2,
                    rotation_ns: 3,
                    transfer_ns: 4,
                    queue_depth: 0,
                },
            ),
            (
                350,
                Event::CrssState {
                    query: 2,
                    d_th_sq: 4.0,
                    stack_runs: 1,
                    stack_candidates: 3,
                },
            ),
            (
                400,
                Event::QueryComplete {
                    query: 2,
                    response_ns: 300,
                    nodes: 2,
                    batches: 2,
                    disk_queue_ns: 2,
                    seek_ns: 4,
                    rotation_ns: 6,
                    transfer_ns: 8,
                    bus_queue_ns: 0,
                    bus_ns: 10,
                    cpu_queue_ns: 0,
                    cpu_ns: 12,
                },
            ),
        ];
        let profiles = query_profiles(&events);
        assert_eq!(profiles.len(), 1);
        let p = &profiles[0];
        assert_eq!(p.query, 2);
        assert_eq!(p.arrive_ns, 100);
        assert_eq!(p.complete_ns, 400);
        assert_eq!(p.nodes_per_level, vec![1, 0, 1]);
        assert_eq!(p.total_nodes(), 2);
        assert_eq!(p.breakdown.seek_ns, 4);
        assert_eq!(p.crss_trajectory.len(), 1);
        assert_eq!(p.crss_trajectory[0].stack_candidates, 3);

        let doc = parse(&p.to_json()).unwrap();
        assert_eq!(doc.get("response_ns").unwrap().as_u64(), Some(300));
        let levels = doc.get("nodes_per_level").unwrap().as_arr().unwrap();
        assert_eq!(levels.len(), 3);
        assert!(doc.get("crss").is_some());
        let jsonl = profiles_to_jsonl(&profiles);
        assert_eq!(jsonl.lines().count(), 1);
    }
}
