//! The live telemetry plane: sharded, lock-free metrics a serving
//! process mutates on its query hot path and scrapes while running.
//!
//! The post-hoc [`Recorder`](crate::Recorder) seam of this crate is
//! single-threaded (`&mut dyn Recorder`) and only yields numbers after a
//! run ends; a TCP server answering queries from a worker pool needs the
//! opposite: shared, always-on registries that many threads update
//! concurrently and any thread can snapshot at any moment. This module
//! provides that plane:
//!
//! * [`LiveCounter`] — a wait-free atomic monotone counter;
//! * [`LiveGauge`] — an atomic `f64` point-in-time value;
//! * [`LiveHistogram`] — a sharded atomic histogram over the same
//!   static log-spaced bucket bounds as [`Histogram`]; `observe` is
//!   wait-free on the bucket/count increments (plain `fetch_add`) and
//!   lock-free on the sum/min/max (CAS loops), and `snapshot()` merges
//!   the shards into an ordinary [`Histogram`] — observed from N
//!   threads it aggregates to exactly what the single-threaded
//!   histogram fed the same values would hold;
//! * [`WindowRing`] — a bounded ring of recent `(timestamp, value)`
//!   completions for rolling qps and windowed percentiles;
//! * [`FlightRecorder`] — a bounded ring of recent obs [`Event`]s (the
//!   "flight recorder"): always recording, drained on demand into a
//!   Perfetto trace without ever growing;
//! * [`SlowQueryLog`] — an append-only JSONL log of queries that ran
//!   over a threshold, with the full per-component breakdown;
//! * [`LiveTelemetry`] — the registry bundling all of the above for the
//!   serving stack, snapshotting into the existing [`MetricsSnapshot`]
//!   vocabulary and rendering Prometheus text via
//!   [`prometheus`](crate::prometheus).
//!
//! Overhead contract: nothing in the query path takes a lock. The rings
//! use per-slot sequence stamps (writers never wait; a reader that
//! catches a slot mid-write discards it), and the only mutex in the
//! module guards the slow-query log file — paid exclusively by queries
//! that already blew the latency threshold.

use crate::event::Event;
use crate::json::ObjWriter;
use crate::metrics::{
    Counter, DiskMetrics, Histogram, MetricsSnapshot, DEPTH_BOUNDS, TIME_MS_BOUNDS,
};
use std::cell::UnsafeCell;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Number of shards per [`LiveHistogram`]: enough that a worker pool of
/// typical width rarely collides on a cache line, small enough that
/// snapshot merges stay trivial.
const HIST_SHARDS: usize = 8;

/// A process-wide small integer identifying the calling thread, used to
/// spread threads across histogram shards. Assigned round-robin on
/// first use per thread, so a steady worker pool maps to distinct
/// shards whenever it is no wider than the shard count.
fn thread_slot() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    SLOT.with(|s| *s)
}

/// Adds `v` to an atomic `f64` stored as bits (CAS loop; lock-free).
fn f64_fetch_add(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    loop {
        let next = (f64::from_bits(cur) + v).to_bits();
        match cell.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Lowers an atomic `f64` minimum to `v` if smaller (CAS loop).
fn f64_fetch_min(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    while v < f64::from_bits(cur) {
        match cell.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// Raises an atomic `f64` maximum to `v` if larger (CAS loop).
fn f64_fetch_max(cell: &AtomicU64, v: f64) {
    let mut cur = cell.load(Ordering::Relaxed);
    while v > f64::from_bits(cur) {
        match cell.compare_exchange_weak(cur, v.to_bits(), Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => return,
            Err(seen) => cur = seen,
        }
    }
}

/// A wait-free monotone event count shared across threads — the live
/// twin of [`Counter`].
#[derive(Debug, Default)]
pub struct LiveCounter(AtomicU64);

impl LiveCounter {
    /// An empty counter.
    pub const fn new() -> Self {
        Self(AtomicU64::new(0))
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current count.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Snapshot into the post-hoc vocabulary.
    pub fn snapshot(&self) -> Counter {
        Counter(self.get())
    }
}

/// An atomic `f64` point-in-time value (last write wins) — the live
/// twin of [`Gauge`](crate::Gauge).
#[derive(Debug)]
pub struct LiveGauge(AtomicU64);

impl Default for LiveGauge {
    fn default() -> Self {
        Self(AtomicU64::new(0f64.to_bits()))
    }
}

impl LiveGauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// One histogram shard, padded to its own cache line so concurrent
/// writers on different shards never false-share.
#[repr(align(64))]
struct HistShard {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum_bits: AtomicU64,
    min_bits: AtomicU64,
    max_bits: AtomicU64,
}

impl HistShard {
    fn new(n_buckets: usize) -> Self {
        Self {
            buckets: (0..n_buckets).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
            min_bits: AtomicU64::new(f64::INFINITY.to_bits()),
            max_bits: AtomicU64::new(f64::NEG_INFINITY.to_bits()),
        }
    }
}

/// A sharded atomic histogram over the same static bucket bounds as
/// [`Histogram`]. Threads observe into the shard indexed by their
/// [`thread_slot`]; `snapshot()` merges the shards into an ordinary
/// [`Histogram`] whose buckets, count and extrema are exactly what a
/// single-threaded histogram fed the same values would hold (the sum
/// too whenever the values are exactly representable, e.g. integers —
/// f64 addition is order-sensitive only through rounding).
pub struct LiveHistogram {
    bounds: &'static [f64],
    shards: Box<[HistShard]>,
}

impl LiveHistogram {
    /// An empty histogram over `bounds` (see [`TIME_MS_BOUNDS`],
    /// [`DEPTH_BOUNDS`]).
    pub fn new(bounds: &'static [f64]) -> Self {
        Self {
            bounds,
            shards: (0..HIST_SHARDS)
                .map(|_| HistShard::new(bounds.len() + 1))
                .collect(),
        }
    }

    /// Records one observation. Bucket and count updates are single
    /// `fetch_add`s (wait-free); sum/min/max are CAS loops (lock-free).
    #[inline]
    pub fn observe(&self, v: f64) {
        // Same bucket rule as `Histogram::observe`: first inclusive
        // upper bound that fits, overflow bucket otherwise.
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        let shard = &self.shards[thread_slot() % HIST_SHARDS];
        shard.buckets[idx].fetch_add(1, Ordering::Relaxed);
        shard.count.fetch_add(1, Ordering::Relaxed);
        f64_fetch_add(&shard.sum_bits, v);
        f64_fetch_min(&shard.min_bits, v);
        f64_fetch_max(&shard.max_bits, v);
    }

    /// Total observations across all shards.
    pub fn count(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.count.load(Ordering::Relaxed))
            .sum()
    }

    /// Merges the shards into a plain [`Histogram`] snapshot.
    pub fn snapshot(&self) -> Histogram {
        let mut buckets = vec![0u64; self.bounds.len() + 1];
        let mut count = 0u64;
        let mut sum = 0.0f64;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        for shard in &self.shards {
            for (acc, b) in buckets.iter_mut().zip(shard.buckets.iter()) {
                *acc += b.load(Ordering::Relaxed);
            }
            count += shard.count.load(Ordering::Relaxed);
            sum += f64::from_bits(shard.sum_bits.load(Ordering::Relaxed));
            min = min.min(f64::from_bits(shard.min_bits.load(Ordering::Relaxed)));
            max = max.max(f64::from_bits(shard.max_bits.load(Ordering::Relaxed)));
        }
        Histogram::from_raw(self.bounds, buckets, count, sum, min, max)
    }
}

/// One slot of a sequence-stamped ring: the generation stamp brackets
/// the payload write so readers can detect (and discard) a slot caught
/// mid-update without writers ever waiting.
struct SeqCell<T> {
    seq: AtomicU64,
    data: UnsafeCell<T>,
}

// Readers only dereference the cell between matching even sequence
// stamps; a racing writer makes the stamps differ and the read is
// discarded, so a torn value is never *used*. Payloads are plain-scalar
// `Copy` types.
unsafe impl<T: Copy + Send> Sync for SeqCell<T> {}

/// A bounded, lock-free multi-producer ring buffer of `Copy` records;
/// new records overwrite the oldest. Writers claim globally unique
/// indices with one `fetch_add` and never wait; `snapshot` returns the
/// most recent records best-effort (slots being overwritten during the
/// read are skipped). Built for telemetry: losing a record under
/// extreme contention is acceptable, blocking the hot path is not.
pub struct Ring<T: Copy> {
    slots: Box<[SeqCell<T>]>,
    head: AtomicU64,
}

impl<T: Copy + Send> Ring<T> {
    /// A ring of `capacity` slots primed with `placeholder` (never
    /// surfaced: unwritten slots keep sequence 0, which matches no
    /// generation).
    pub fn new(capacity: usize, placeholder: T) -> Self {
        assert!(capacity > 0, "ring capacity must be positive");
        Self {
            slots: (0..capacity)
                .map(|_| SeqCell {
                    seq: AtomicU64::new(0),
                    data: UnsafeCell::new(placeholder),
                })
                .collect(),
            head: AtomicU64::new(0),
        }
    }

    /// Number of slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever pushed (≥ the number still resident).
    pub fn pushed(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Appends a record, overwriting the oldest once full.
    pub fn push(&self, value: T) {
        let i = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(i % self.slots.len() as u64) as usize];
        // Odd stamp = write in progress; final stamp encodes the
        // generation, so a reader knows *which* record it saw.
        slot.seq.store(2 * i + 1, Ordering::Release);
        unsafe { std::ptr::write_volatile(slot.data.get(), value) };
        slot.seq.store(2 * i + 2, Ordering::Release);
    }

    /// The resident records, oldest first, skipping any slot a writer
    /// held mid-update at read time.
    pub fn snapshot(&self) -> Vec<T> {
        let head = self.head.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let mut out = Vec::with_capacity(head.min(cap) as usize);
        for i in head.saturating_sub(cap)..head {
            let slot = &self.slots[(i % cap) as usize];
            let want = 2 * i + 2;
            if slot.seq.load(Ordering::Acquire) != want {
                continue; // torn or already overwritten
            }
            let value = unsafe { std::ptr::read_volatile(slot.data.get()) };
            if slot.seq.load(Ordering::Acquire) == want {
                out.push(value);
            }
        }
        out
    }
}

/// Sliding-window aggregation over recent query completions: rolling
/// qps and windowed latency percentiles, computed from a bounded
/// [`Ring`] of `(completion timestamp ns, response ms)` pairs.
pub struct WindowRing {
    ring: Ring<(u64, f64)>,
    window_ns: u64,
}

/// What the sliding window knows right now.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WindowStats {
    /// Completions inside the window (bounded by the ring capacity).
    pub samples: u64,
    /// Completions per second over the effective window.
    pub qps: f64,
    /// Windowed median response, ms.
    pub p50_ms: f64,
    /// Windowed 95th-percentile response, ms.
    pub p95_ms: f64,
    /// Windowed 99th-percentile response, ms.
    pub p99_ms: f64,
}

/// Linear-interpolated percentile of an ascending-sorted sample — the
/// same convention as the real-clock engine's report percentiles.
fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (sorted[hi] - sorted[lo]) * (pos - lo as f64)
    }
}

impl WindowRing {
    /// A window of `window_ns` over at most `capacity` completions.
    pub fn new(capacity: usize, window_ns: u64) -> Self {
        Self {
            ring: Ring::new(capacity, (0u64, 0f64)),
            window_ns,
        }
    }

    /// Records one completion at `ts_ns` with response `value_ms`.
    pub fn record(&self, ts_ns: u64, value_ms: f64) {
        self.ring.push((ts_ns, value_ms));
    }

    /// The window length in nanoseconds.
    pub fn window_ns(&self) -> u64 {
        self.window_ns
    }

    /// Mean of the values within the window ending at `now_ns`, or
    /// `None` when the window is empty. Used for the model-residual
    /// gauges, where a mean is the drift signal of interest.
    pub fn mean(&self, now_ns: u64) -> Option<f64> {
        let floor = now_ns.saturating_sub(self.window_ns);
        let mut sum = 0.0;
        let mut n = 0u64;
        for (ts, v) in self.ring.snapshot() {
            if ts >= floor && ts <= now_ns {
                sum += v;
                n += 1;
            }
        }
        (n > 0).then(|| sum / n as f64)
    }

    /// Aggregates the completions within the window ending at `now_ns`.
    ///
    /// qps uses the *effective* window: when the run is younger than
    /// the window (`now_ns` counts from registry creation) the rate
    /// divides by the elapsed run time, and when the ring wrapped
    /// inside the window it divides by the span back to the oldest
    /// resident completion — never by uncovered time.
    pub fn stats(&self, now_ns: u64) -> WindowStats {
        let floor = now_ns.saturating_sub(self.window_ns);
        let mut in_window: Vec<(u64, f64)> = self
            .ring
            .snapshot()
            .into_iter()
            .filter(|&(ts, _)| ts >= floor && ts <= now_ns)
            .collect();
        if in_window.is_empty() {
            return WindowStats::default();
        }
        let oldest = in_window.iter().map(|&(ts, _)| ts).min().unwrap_or(floor);
        let wrapped = self.ring.pushed() > self.ring.capacity() as u64;
        let span_ns = if wrapped {
            now_ns.saturating_sub(oldest).max(1)
        } else {
            self.window_ns.min(now_ns).max(1)
        };
        let samples = in_window.len() as u64;
        let mut values: Vec<f64> = in_window.drain(..).map(|(_, v)| v).collect();
        values.sort_by(|a, b| a.partial_cmp(b).expect("finite response times"));
        WindowStats {
            samples,
            qps: samples as f64 / (span_ns as f64 / 1e9),
            p50_ms: percentile(&values, 0.50),
            p95_ms: percentile(&values, 0.95),
            p99_ms: percentile(&values, 0.99),
        }
    }
}

/// A bounded ring of recent obs [`Event`]s, always recording while the
/// server runs; `drain` snapshots it into timestamp order for Perfetto
/// export (`DUMP-TRACE`).
pub struct FlightRecorder {
    ring: Ring<(u64, Event)>,
}

impl FlightRecorder {
    /// A recorder retaining the last `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Self {
            ring: Ring::new(capacity, (0, Event::QueryArrive { query: 0 })),
        }
    }

    /// Records one event stamped `ts_ns`.
    #[inline]
    pub fn record(&self, ts_ns: u64, event: Event) {
        self.ring.push((ts_ns, event));
    }

    /// Total events ever recorded (retention is bounded by capacity).
    pub fn recorded(&self) -> u64 {
        self.ring.pushed()
    }

    /// The resident events in timestamp order.
    pub fn drain(&self) -> Vec<(u64, Event)> {
        let mut events = self.ring.snapshot();
        events.sort_by_key(|&(ts, _)| ts);
        events
    }
}

/// Everything the engine knows about one finished query, handed to
/// [`LiveTelemetry::observe_query`] at completion.
#[derive(Debug, Clone, Copy)]
pub struct QueryObservation<'a> {
    /// Global serving id of the query.
    pub query: u32,
    /// Algorithm that ran it.
    pub algo: &'a str,
    /// Requested neighbour count.
    pub k: usize,
    /// Answers produced (0 when failed).
    pub answers: usize,
    /// Index nodes fetched.
    pub nodes: u64,
    /// Fetch batches issued.
    pub batches: u32,
    /// Pickup-to-completion response time, ns.
    pub response_ns: u64,
    /// Total time requests waited in disk queues, ns.
    pub disk_queue_ns: u64,
    /// Total disk service (read) time, ns.
    pub disk_service_ns: u64,
    /// Total CPU execution time, ns.
    pub cpu_ns: u64,
    /// Whether the query aborted with a typed error.
    pub failed: bool,
}

/// The append-only JSONL log of over-threshold queries. One line per
/// slow query: serving id, algorithm, k, answer count, and the full
/// per-component response-time breakdown. The file handle is behind a
/// mutex — the *only* lock in the live plane — paid exclusively by
/// queries that already exceeded the threshold.
pub struct SlowQueryLog {
    path: PathBuf,
    file: Mutex<std::fs::File>,
}

impl SlowQueryLog {
    /// Creates (truncates) the log at `path`.
    pub fn create(path: &Path) -> std::io::Result<Self> {
        Ok(Self {
            path: path.to_path_buf(),
            file: Mutex::new(std::fs::File::create(path)?),
        })
    }

    /// Where the log lives.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Renders one observation as its JSONL line (without newline).
    pub fn line(ts_ns: u64, o: &QueryObservation<'_>) -> String {
        Self::line_with_explain(ts_ns, o, None)
    }

    /// Like [`Self::line`], with the query's rendered
    /// [`QueryExplain`](crate::explain::QueryExplain) JSON embedded
    /// under an `explain` key when available.
    pub fn line_with_explain(ts_ns: u64, o: &QueryObservation<'_>, explain: Option<&str>) -> String {
        let mut w = ObjWriter::new();
        w.field_u64("ts_ns", ts_ns);
        w.field_u64("query", o.query as u64);
        w.field_str("algo", o.algo);
        w.field_u64("k", o.k as u64);
        w.field_u64("answers", o.answers as u64);
        w.field_u64("nodes", o.nodes);
        w.field_u64("batches", o.batches as u64);
        w.field_f64("response_ms", o.response_ns as f64 / 1e6);
        w.field_f64("disk_queue_ms", o.disk_queue_ns as f64 / 1e6);
        w.field_f64("disk_service_ms", o.disk_service_ns as f64 / 1e6);
        w.field_f64("cpu_ms", o.cpu_ns as f64 / 1e6);
        w.field_bool("failed", o.failed);
        if let Some(explain) = explain {
            w.field_raw("explain", explain);
        }
        w.finish()
    }

    fn append(&self, ts_ns: u64, o: &QueryObservation<'_>, explain: Option<&str>) {
        let line = Self::line_with_explain(ts_ns, o, explain);
        if let Ok(mut file) = self.file.lock() {
            // Telemetry must never fail the query: drop the line on I/O
            // errors rather than surface them into the serving path.
            let _ = writeln!(file, "{line}");
        }
    }
}

/// Per-disk live metrics, fed by the I/O backend's worker threads.
pub struct LiveDisk {
    /// Reads served.
    pub requests: LiveCounter,
    /// Cumulative service (busy) time, ns — utilization numerator.
    pub busy_ns: LiveCounter,
    /// Cumulative time requests waited in this disk's queue, ns.
    pub queue_ns: LiveCounter,
    /// Queue depth seen by the most recent submission (gauge).
    pub depth: AtomicU64,
    /// Distribution of per-read time-in-queue, ms.
    pub queue_time_ms: LiveHistogram,
    /// Distribution of per-read service time, ms.
    pub service_ms: LiveHistogram,
    /// Distribution of queue depth at submission.
    pub queue_depth: LiveHistogram,
}

impl LiveDisk {
    fn new() -> Self {
        Self {
            requests: LiveCounter::new(),
            busy_ns: LiveCounter::new(),
            queue_ns: LiveCounter::new(),
            depth: AtomicU64::new(0),
            queue_time_ms: LiveHistogram::new(TIME_MS_BOUNDS),
            service_ms: LiveHistogram::new(TIME_MS_BOUNDS),
            queue_depth: LiveHistogram::new(DEPTH_BOUNDS),
        }
    }

    /// Fraction of `elapsed_ns` this disk spent servicing reads.
    pub fn utilization(&self, elapsed_ns: u64) -> f64 {
        if elapsed_ns == 0 {
            0.0
        } else {
            self.busy_ns.get() as f64 / elapsed_ns as f64
        }
    }
}

/// The live registry for the serving stack: query counters and latency
/// distributions, per-query component breakdowns, per-disk service
/// metrics, a sliding window, a flight recorder and the slow-query log,
/// all shared (`&self` everywhere) and lock-free on the query path.
pub struct LiveTelemetry {
    started: Instant,
    next_query: AtomicU64,
    /// Queries picked up by a worker.
    pub queries_started: LiveCounter,
    /// Queries that completed with an answer.
    pub queries_completed: LiveCounter,
    /// Queries that aborted with a typed error.
    pub queries_failed: LiveCounter,
    /// Completed queries that exceeded the slow-query threshold.
    pub slow_queries: LiveCounter,
    /// Reads served by a shadow replica (degraded mode).
    pub degraded_reads: LiveCounter,
    /// Response-time distribution, ms.
    pub response_ms: LiveHistogram,
    /// Per-query total time-in-disk-queue distribution, ms.
    pub disk_queue_ms: LiveHistogram,
    /// Per-query total disk service time distribution, ms.
    pub disk_service_ms: LiveHistogram,
    /// Per-query total CPU time distribution, ms.
    pub cpu_ms: LiveHistogram,
    /// Fetch-batch size distribution.
    pub batch_size: LiveHistogram,
    disks: Box<[LiveDisk]>,
    window: WindowRing,
    residual_accesses: WindowRing,
    residual_latency: WindowRing,
    flight: Option<FlightRecorder>,
    slow_log: Option<SlowQueryLog>,
    slow_threshold_ns: u64,
}

/// Default sliding-window length: one minute.
pub const DEFAULT_WINDOW_NS: u64 = 60_000_000_000;

/// Default window ring capacity (completions retained for windowed
/// percentiles).
pub const DEFAULT_WINDOW_CAP: usize = 8192;

impl LiveTelemetry {
    /// A registry for an array of `num_disks` disks, with a one-minute
    /// sliding window and no flight recorder or slow-query log.
    pub fn new(num_disks: u32) -> Self {
        Self {
            started: Instant::now(),
            next_query: AtomicU64::new(0),
            queries_started: LiveCounter::new(),
            queries_completed: LiveCounter::new(),
            queries_failed: LiveCounter::new(),
            slow_queries: LiveCounter::new(),
            degraded_reads: LiveCounter::new(),
            response_ms: LiveHistogram::new(TIME_MS_BOUNDS),
            disk_queue_ms: LiveHistogram::new(TIME_MS_BOUNDS),
            disk_service_ms: LiveHistogram::new(TIME_MS_BOUNDS),
            cpu_ms: LiveHistogram::new(TIME_MS_BOUNDS),
            batch_size: LiveHistogram::new(DEPTH_BOUNDS),
            disks: (0..num_disks).map(|_| LiveDisk::new()).collect(),
            window: WindowRing::new(DEFAULT_WINDOW_CAP, DEFAULT_WINDOW_NS),
            residual_accesses: WindowRing::new(DEFAULT_WINDOW_CAP, DEFAULT_WINDOW_NS),
            residual_latency: WindowRing::new(DEFAULT_WINDOW_CAP, DEFAULT_WINDOW_NS),
            flight: None,
            slow_log: None,
            slow_threshold_ns: u64::MAX,
        }
    }

    /// Enables the flight recorder with `capacity` retained events
    /// (0 disables it again).
    pub fn with_flight_recorder(mut self, capacity: usize) -> Self {
        self.flight = (capacity > 0).then(|| FlightRecorder::new(capacity));
        self
    }

    /// Overrides the sliding window (length and retained completions).
    /// The model-residual windows follow the same bounds.
    pub fn with_window(mut self, capacity: usize, window_ns: u64) -> Self {
        self.window = WindowRing::new(capacity, window_ns);
        self.residual_accesses = WindowRing::new(capacity, window_ns);
        self.residual_latency = WindowRing::new(capacity, window_ns);
        self
    }

    /// Enables the slow-query log: completions at or over
    /// `threshold_ms` append a JSONL breakdown line to `path`.
    pub fn with_slow_query_log(mut self, path: &Path, threshold_ms: f64) -> std::io::Result<Self> {
        self.slow_log = Some(SlowQueryLog::create(path)?);
        self.slow_threshold_ns = (threshold_ms.max(0.0) * 1e6) as u64;
        Ok(self)
    }

    /// Disks in the observed array.
    pub fn num_disks(&self) -> u32 {
        self.disks.len() as u32
    }

    /// Per-disk live metrics.
    pub fn disks(&self) -> &[LiveDisk] {
        &self.disks
    }

    /// Nanoseconds since the registry was created (the timestamp base
    /// of the flight recorder and the sliding window).
    pub fn now_ns(&self) -> u64 {
        self.started.elapsed().as_nanos() as u64
    }

    /// Whether events should be constructed for the flight recorder.
    #[inline]
    pub fn flight_enabled(&self) -> bool {
        self.flight.is_some()
    }

    /// The flight recorder, if enabled.
    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref()
    }

    /// The slow-query log, if enabled.
    pub fn slow_log(&self) -> Option<&SlowQueryLog> {
        self.slow_log.as_ref()
    }

    /// Assigns the next global serving query id and counts the pickup.
    pub fn begin_query(&self) -> u32 {
        self.queries_started.inc();
        self.next_query.fetch_add(1, Ordering::Relaxed) as u32
    }

    /// Queries currently in flight (started minus finished).
    pub fn inflight(&self) -> u64 {
        self.queries_started
            .get()
            .saturating_sub(self.queries_completed.get() + self.queries_failed.get())
    }

    /// Records one event into the flight recorder (no-op when the
    /// recorder is disabled).
    #[inline]
    pub fn record_event(&self, ts_ns: u64, event: Event) {
        if let Some(flight) = &self.flight {
            flight.record(ts_ns, event);
        }
    }

    /// Feeds one finished query into every live aggregate: counters,
    /// latency/component histograms, the sliding window, and — when the
    /// query ran over the threshold — the slow-query log.
    pub fn observe_query(&self, o: &QueryObservation<'_>) {
        self.observe_query_explained(o, None);
    }

    /// [`Self::observe_query`] with the query's rendered
    /// [`QueryExplain`](crate::explain::QueryExplain) JSON attached:
    /// when the query lands in the slow-query log, the record is
    /// embedded in its line under an `explain` key.
    pub fn observe_query_explained(&self, o: &QueryObservation<'_>, explain_json: Option<&str>) {
        if o.failed {
            self.queries_failed.inc();
            return;
        }
        self.queries_completed.inc();
        let response_ms = o.response_ns as f64 / 1e6;
        self.response_ms.observe(response_ms);
        self.disk_queue_ms.observe(o.disk_queue_ns as f64 / 1e6);
        self.disk_service_ms.observe(o.disk_service_ns as f64 / 1e6);
        self.cpu_ms.observe(o.cpu_ns as f64 / 1e6);
        let now = self.now_ns();
        self.window.record(now, response_ms);
        if o.response_ns >= self.slow_threshold_ns {
            self.slow_queries.inc();
            if let Some(log) = &self.slow_log {
                log.append(now, o, explain_json);
            }
        }
    }

    /// Feeds one predicted-vs-observed residual pair into the drift
    /// windows behind the `sqda_model_residual_*` gauges. Non-finite
    /// components (no prediction, or a saturated latency estimate) are
    /// skipped.
    pub fn observe_residual(&self, accesses: f64, latency_ms: f64) {
        let now = self.now_ns();
        if accesses.is_finite() {
            self.residual_accesses.record(now, accesses);
        }
        if latency_ms.is_finite() {
            self.residual_latency.record(now, latency_ms);
        }
    }

    /// Windowed mean observed-minus-predicted node accesses (0 when no
    /// residuals were observed in the window).
    pub fn residual_accesses_mean(&self) -> f64 {
        self.residual_accesses.mean(self.now_ns()).unwrap_or(0.0)
    }

    /// Windowed mean observed-minus-predicted response time, ms (0
    /// when no residuals were observed in the window).
    pub fn residual_latency_mean_ms(&self) -> f64 {
        self.residual_latency.mean(self.now_ns()).unwrap_or(0.0)
    }

    /// Feeds one disk read (called from the I/O backend's worker
    /// threads through the `ReadObserver` seam).
    pub fn observe_disk_read(&self, disk: u32, queue_ns: u64, service_ns: u64, queue_depth: u32) {
        let Some(d) = self.disks.get(disk as usize) else {
            return;
        };
        d.requests.inc();
        d.busy_ns.add(service_ns);
        d.queue_ns.add(queue_ns);
        d.depth.store(queue_depth as u64, Ordering::Relaxed);
        d.queue_time_ms.observe(queue_ns as f64 / 1e6);
        d.service_ms.observe(service_ns as f64 / 1e6);
        d.queue_depth.observe(queue_depth as f64);
    }

    /// Current sliding-window aggregates.
    pub fn window_stats(&self) -> WindowStats {
        self.window.stats(self.now_ns())
    }

    /// Snapshots the live registries into the post-hoc
    /// [`MetricsSnapshot`] vocabulary (cache behaviour is the store's;
    /// fold an `IoStats` in afterwards like any other snapshot).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut snap = MetricsSnapshot::new();
        snap.queries_arrived = self.queries_started.snapshot();
        snap.queries_completed = self.queries_completed.snapshot();
        snap.queries_aborted = self.queries_failed.snapshot();
        snap.degraded_reads = self.degraded_reads.snapshot();
        snap.response_ms = self.response_ms.snapshot();
        snap.batch_size = self.batch_size.snapshot();
        for (i, d) in self.disks.iter().enumerate() {
            if d.requests.get() == 0 {
                continue;
            }
            let mut dm = DiskMetrics::new();
            dm.requests = d.requests.snapshot();
            dm.busy_ns = d.busy_ns.snapshot();
            dm.queue_time_ms = d.queue_time_ms.snapshot();
            dm.queue_depth = d.queue_depth.snapshot();
            snap.disks.insert(i as u16, dm);
        }
        snap
    }

    /// Renders the whole registry as Prometheus text exposition; see
    /// [`prometheus`](crate::prometheus) for the format contract.
    pub fn prometheus(&self, io: Option<&sqda_storage::IoStats>) -> String {
        crate::prometheus::render(self, io)
    }
}

/// The hook the I/O backends call from their disk worker threads:
/// [`LiveTelemetry`] *is* a [`sqda_storage::ReadObserver`], so
/// `ThreadedFileBackend::with_observer(store, telemetry)` feeds the
/// per-disk registries without the storage crate knowing any metrics
/// vocabulary.
impl sqda_storage::ReadObserver for LiveTelemetry {
    fn on_disk_read(&self, disk: u32, queue_ns: u64, service_ns: u64, queue_depth: u32) {
        self.observe_disk_read(disk, queue_ns, service_ns, queue_depth);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_roundtrip() {
        let c = LiveCounter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.snapshot(), Counter(5));
        let g = LiveGauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(3.25);
        assert_eq!(g.get(), 3.25);
    }

    #[test]
    fn live_histogram_matches_sequential() {
        let live = LiveHistogram::new(TIME_MS_BOUNDS);
        let mut plain = Histogram::new(TIME_MS_BOUNDS);
        for v in [0.005, 0.5, 7.0, 9999.0, 42.0] {
            live.observe(v);
            plain.observe(v);
        }
        assert_eq!(live.snapshot(), plain);
        assert_eq!(live.count(), 5);
    }

    #[test]
    fn ring_keeps_latest_and_survives_wrap() {
        let ring = Ring::new(4, 0u64);
        for i in 1..=10u64 {
            ring.push(i);
        }
        assert_eq!(ring.snapshot(), vec![7, 8, 9, 10]);
        assert_eq!(ring.pushed(), 10);
        assert_eq!(ring.capacity(), 4);
    }

    #[test]
    fn ring_empty_and_partial() {
        let ring = Ring::new(8, 0u64);
        assert!(ring.snapshot().is_empty());
        ring.push(3);
        ring.push(4);
        assert_eq!(ring.snapshot(), vec![3, 4]);
    }

    #[test]
    fn window_stats_rate_and_percentiles() {
        let w = WindowRing::new(64, 10_000_000_000); // 10 s window
        // 20 completions, one per 100 ms, responses 1..=20 ms.
        for i in 0..20u64 {
            w.record(i * 100_000_000, (i + 1) as f64);
        }
        let s = w.stats(1_900_000_000);
        assert_eq!(s.samples, 20);
        // Run (1.9 s) younger than the window: qps over the covered span.
        assert!((s.qps - 20.0 / 1.9).abs() < 1e-6, "qps = {}", s.qps);
        assert!((s.p50_ms - 10.5).abs() < 1e-9);
        assert!(s.p95_ms > s.p50_ms && s.p99_ms >= s.p95_ms);
        // Far in the future: everything aged out.
        assert_eq!(w.stats(100_000_000_000).samples, 0);
    }

    #[test]
    fn flight_recorder_drains_in_timestamp_order() {
        let f = FlightRecorder::new(8);
        f.record(5, Event::QueryArrive { query: 1 });
        f.record(2, Event::QueryArrive { query: 0 });
        f.record(9, Event::QueryComplete {
            query: 0,
            response_ns: 7,
            nodes: 1,
            batches: 1,
            disk_queue_ns: 0,
            seek_ns: 0,
            rotation_ns: 0,
            transfer_ns: 0,
            bus_queue_ns: 0,
            bus_ns: 0,
            cpu_queue_ns: 0,
            cpu_ns: 0,
        });
        let drained = f.drain();
        assert_eq!(drained.len(), 3);
        assert!(drained.windows(2).all(|w| w[0].0 <= w[1].0));
        assert_eq!(f.recorded(), 3);
    }

    #[test]
    fn telemetry_counts_and_snapshots() {
        let t = LiveTelemetry::new(2).with_flight_recorder(16);
        let q0 = t.begin_query();
        let q1 = t.begin_query();
        assert_eq!((q0, q1), (0, 1));
        assert_eq!(t.inflight(), 2);
        t.observe_disk_read(0, 1_000_000, 2_000_000, 3);
        t.observe_disk_read(1, 0, 500_000, 0);
        t.observe_query(&QueryObservation {
            query: q0,
            algo: "CRSS",
            k: 5,
            answers: 5,
            nodes: 7,
            batches: 2,
            response_ns: 4_000_000,
            disk_queue_ns: 1_000_000,
            disk_service_ns: 2_500_000,
            cpu_ns: 300_000,
            failed: false,
        });
        t.observe_query(&QueryObservation {
            query: q1,
            algo: "CRSS",
            k: 5,
            answers: 0,
            nodes: 0,
            batches: 0,
            response_ns: 0,
            disk_queue_ns: 0,
            disk_service_ns: 0,
            cpu_ns: 0,
            failed: true,
        });
        assert_eq!(t.inflight(), 0);
        assert_eq!(t.queries_completed.get(), 1);
        assert_eq!(t.queries_failed.get(), 1);
        let snap = t.snapshot();
        assert_eq!(snap.queries_arrived.0, 2);
        assert_eq!(snap.queries_completed.0, 1);
        assert_eq!(snap.queries_aborted.0, 1);
        assert_eq!(snap.response_ms.count(), 1);
        assert_eq!(snap.disks.len(), 2);
        assert_eq!(snap.disks[&0].requests.0, 1);
        assert_eq!(snap.disks[&0].busy_ns.0, 2_000_000);
        let ws = t.window_stats();
        assert_eq!(ws.samples, 1);
        assert!((ws.p50_ms - 4.0).abs() < 1e-9);
        assert_eq!(t.disks()[0].depth.load(Ordering::Relaxed), 3);
        assert!(t.disks()[0].utilization(4_000_000) > 0.0);
    }

    #[test]
    fn slow_query_log_lines_and_threshold() {
        let dir = std::env::temp_dir().join(format!("sqda-slowlog-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("slow.jsonl");
        let t = LiveTelemetry::new(1)
            .with_slow_query_log(&path, 2.0)
            .unwrap();
        let fast = QueryObservation {
            query: 0,
            algo: "BBSS",
            k: 3,
            answers: 3,
            nodes: 4,
            batches: 1,
            response_ns: 1_000_000, // 1 ms < 2 ms threshold
            disk_queue_ns: 0,
            disk_service_ns: 800_000,
            cpu_ns: 100_000,
            failed: false,
        };
        let slow = QueryObservation {
            query: 1,
            response_ns: 5_000_000,
            ..fast
        };
        t.begin_query();
        t.begin_query();
        t.observe_query(&fast);
        t.observe_query(&slow);
        assert_eq!(t.slow_queries.get(), 1);
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1);
        let doc = crate::json::parse(lines[0]).unwrap();
        assert_eq!(doc.get("query").unwrap().as_u64(), Some(1));
        assert_eq!(doc.get("algo").unwrap().as_str(), Some("BBSS"));
        assert_eq!(doc.get("answers").unwrap().as_u64(), Some(3));
        assert!(doc.get("response_ms").unwrap().as_f64().unwrap() >= 2.0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn residual_windows_track_drift_means() {
        let t = LiveTelemetry::new(1);
        assert_eq!(t.residual_accesses_mean(), 0.0);
        assert_eq!(t.residual_latency_mean_ms(), 0.0);
        t.observe_residual(2.0, 0.5);
        t.observe_residual(4.0, 1.5);
        // Non-finite components are dropped, not recorded as zeros.
        t.observe_residual(f64::NAN, f64::INFINITY);
        assert!((t.residual_accesses_mean() - 3.0).abs() < 1e-9);
        assert!((t.residual_latency_mean_ms() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn slow_log_embeds_explain_record() {
        let dir = std::env::temp_dir().join(format!("sqda-slowlog-ex-{}", std::process::id()));
        let _ = std::fs::create_dir_all(&dir);
        let path = dir.join("slow.jsonl");
        let t = LiveTelemetry::new(1)
            .with_slow_query_log(&path, 0.0)
            .unwrap();
        t.begin_query();
        t.observe_query_explained(
            &QueryObservation {
                query: 0,
                algo: "CRSS",
                k: 2,
                answers: 2,
                nodes: 3,
                batches: 1,
                response_ns: 2_000_000,
                disk_queue_ns: 0,
                disk_service_ns: 1_000_000,
                cpu_ns: 100_000,
                failed: false,
            },
            Some(r#"{"observed_accesses":3}"#),
        );
        let text = std::fs::read_to_string(&path).unwrap();
        let doc = crate::json::parse(text.lines().next().unwrap()).unwrap();
        let explain = doc.get("explain").unwrap();
        assert_eq!(explain.get("observed_accesses").unwrap().as_u64(), Some(3));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_histogram_observers_merge_exactly() {
        let live = std::sync::Arc::new(LiveHistogram::new(TIME_MS_BOUNDS));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let live = std::sync::Arc::clone(&live);
                s.spawn(move || {
                    for i in 0..1000u64 {
                        live.observe((t * 1000 + i) as f64 / 10.0);
                    }
                });
            }
        });
        let mut plain = Histogram::new(TIME_MS_BOUNDS);
        for v in 0..4000u64 {
            plain.observe(v as f64 / 10.0);
        }
        let snap = live.snapshot();
        assert_eq!(snap.count(), plain.count());
        assert_eq!(snap.buckets(), plain.buckets());
        assert_eq!(snap.max(), plain.max());
    }
}
