//! The structured event vocabulary of the simulated executor.
//!
//! Every event is a plain-scalar record (`Copy`, no heap payload), so
//! emitting one costs a single enum move — the no-op recorder path stays
//! allocation-free. Timestamps travel alongside the event as integer
//! nanoseconds of simulated time (see `Recorder::record`).
//!
//! Component service events carry the *full service-time breakdown* the
//! paper's Section 4.1 model produces — the queueing delay in front of the
//! server plus each physical phase — rather than separate enqueue /
//! phase-done events: the kernel computes completion times at submission,
//! so the whole timeline of a request is known the moment it is issued.

/// Identifies one query of a workload (its index in arrival order).
pub type QueryId = u32;

/// One structured observation from the simulated system.
///
/// The JSONL schema (see `jsonl`) serializes each variant as an object
/// with a `"type"` discriminator in snake_case and the fields below;
/// durations are integer nanoseconds of simulated time.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Event {
    /// A query entered the system (timestamp = arrival).
    QueryArrive {
        /// Workload index of the query.
        query: QueryId,
    },
    /// A query produced its final answer (timestamp = completion).
    /// Carries the whole response-time breakdown accumulated over the
    /// query's requests; component times can overlap wall-clock-wise
    /// (parallel disk fetches), so they sum to ≥ the critical path.
    QueryComplete {
        /// Workload index of the query.
        query: QueryId,
        /// Arrival-to-completion response time.
        response_ns: u64,
        /// Index nodes fetched.
        nodes: u64,
        /// Fetch batches issued.
        batches: u32,
        /// Total time requests waited in disk queues.
        disk_queue_ns: u64,
        /// Total seek time.
        seek_ns: u64,
        /// Total rotational latency.
        rotation_ns: u64,
        /// Total platter transfer + controller overhead.
        transfer_ns: u64,
        /// Total time pages waited for the shared bus.
        bus_queue_ns: u64,
        /// Total bus transfer time.
        bus_ns: u64,
        /// Total time batches waited for a CPU.
        cpu_queue_ns: u64,
        /// Total CPU execution time.
        cpu_ns: u64,
    },
    /// A fetch batch was handed to the disk array (timestamp = issue).
    BatchIssued {
        /// Issuing query.
        query: QueryId,
        /// Shallowest tree level in the batch (root = 0). Equal to
        /// `level_max` for the level-uniform breadth-first algorithms;
        /// CRSS batches that mix candidate-stack pops with fresh
        /// expansions span `level..=level_max`.
        level: u16,
        /// Deepest tree level in the batch.
        level_max: u16,
        /// Pages in the batch.
        size: u32,
    },
    /// One page request's full service at a disk (timestamp =
    /// submission; service starts `queue_ns` later).
    DiskService {
        /// Requesting query.
        query: QueryId,
        /// Disk index within the array.
        disk: u16,
        /// Target cylinder.
        cylinder: u32,
        /// Tree level of the requested page (root = 0).
        level: u16,
        /// FCFS queueing delay before service started.
        queue_ns: u64,
        /// Head-movement time.
        seek_ns: u64,
        /// Rotational latency.
        rotation_ns: u64,
        /// Platter transfer + controller overhead.
        transfer_ns: u64,
        /// Requests already waiting or in service at submission
        /// (this request excluded).
        queue_depth: u32,
    },
    /// One page crossing the shared I/O bus (timestamp = submission).
    BusTransfer {
        /// Requesting query.
        query: QueryId,
        /// Queueing delay before the transfer started.
        queue_ns: u64,
        /// Transfer duration.
        transfer_ns: u64,
    },
    /// One batch-processing step on a CPU (timestamp = submission).
    CpuSlice {
        /// Requesting query.
        query: QueryId,
        /// CPU index (multiprocessor front-end).
        cpu: u16,
        /// Queueing delay before execution started.
        queue_ns: u64,
        /// Execution duration.
        exec_ns: u64,
        /// Instructions charged under the paper's cost model (0 for the
        /// fixed-duration startup step).
        instructions: u64,
    },
    /// CRSS-specific state after processing a batch (timestamp = batch
    /// completion): the threshold-distance trajectory and candidate-stack
    /// occupancy of Section 3.3.
    CrssState {
        /// Query whose CRSS instance reported.
        query: QueryId,
        /// Current squared threshold distance `D_th²` (infinite until
        /// Lemma 1 or k objects bound it; serialized as `null` when not
        /// finite).
        d_th_sq: f64,
        /// Runs on the candidate stack.
        stack_runs: u32,
        /// Saved candidates across all runs.
        stack_candidates: u32,
    },
    /// A disk stopped serving (fail-stop; timestamp = failure instant).
    /// Emitted from the fault plan when a recorded run starts, so sinks
    /// see the full failure schedule even if no query ever probes the
    /// disk.
    DiskFailed {
        /// Index of the failed disk.
        disk: u16,
    },
    /// A failed disk came back (timestamp = recovery instant).
    DiskRecovered {
        /// Index of the recovered disk.
        disk: u16,
    },
    /// A degraded-performance window opened on a disk (timestamp =
    /// window start): a slow-disk latency multiplier, a hot-spot
    /// contention delay, or both.
    DiskDegraded {
        /// Index of the degraded disk.
        disk: u16,
        /// Window end, absolute simulated ns.
        until_ns: u64,
        /// Service-time multiplier in effect over the window.
        multiplier: f64,
        /// Additional per-request service time over the window, ns.
        extra_ns: u64,
    },
    /// A read was redirected from a failed primary disk to its shadow
    /// replica (timestamp = submission).
    DegradedRead {
        /// Requesting query.
        query: QueryId,
        /// The failed primary the page lives on.
        disk: u16,
        /// The mirror partner that served the read instead.
        replica: u16,
    },
    /// No live replica held a requested page; the executor scheduled a
    /// bounded re-probe (timestamp = the failed probe).
    ReadRetry {
        /// Requesting query.
        query: QueryId,
        /// The unavailable primary disk.
        disk: u16,
        /// Probe number (1 = first attempt).
        attempt: u32,
    },
    /// A query gave up: a page stayed unavailable through the whole
    /// retry budget (timestamp = abort). The query leaves the system
    /// with a typed error instead of an answer.
    QueryAbort {
        /// Aborting query.
        query: QueryId,
        /// The unavailable primary disk.
        disk: u16,
        /// Probes spent before giving up.
        attempts: u32,
    },
}

impl Event {
    /// The JSONL `"type"` discriminator for this event.
    pub fn kind(&self) -> &'static str {
        match self {
            Event::QueryArrive { .. } => "query_arrive",
            Event::QueryComplete { .. } => "query_complete",
            Event::BatchIssued { .. } => "batch_issued",
            Event::DiskService { .. } => "disk_service",
            Event::BusTransfer { .. } => "bus_transfer",
            Event::CpuSlice { .. } => "cpu_slice",
            Event::CrssState { .. } => "crss_state",
            Event::DiskFailed { .. } => "disk_failed",
            Event::DiskRecovered { .. } => "disk_recovered",
            Event::DiskDegraded { .. } => "disk_degraded",
            Event::DegradedRead { .. } => "degraded_read",
            Event::ReadRetry { .. } => "read_retry",
            Event::QueryAbort { .. } => "query_abort",
        }
    }

    /// The query the event belongs to, or `None` for disk-level fault
    /// events that no single query owns.
    pub fn query(&self) -> Option<QueryId> {
        match *self {
            Event::QueryArrive { query }
            | Event::QueryComplete { query, .. }
            | Event::BatchIssued { query, .. }
            | Event::DiskService { query, .. }
            | Event::BusTransfer { query, .. }
            | Event::CpuSlice { query, .. }
            | Event::CrssState { query, .. }
            | Event::DegradedRead { query, .. }
            | Event::ReadRetry { query, .. }
            | Event::QueryAbort { query, .. } => Some(query),
            Event::DiskFailed { .. } | Event::DiskRecovered { .. } | Event::DiskDegraded { .. } => {
                None
            }
        }
    }
}

/// The consumer of executor events.
///
/// The contract that keeps instrumentation honest:
///
/// * recording must never change simulated behaviour — implementations
///   only observe;
/// * when [`Recorder::enabled`] is `false` the executor skips all
///   bookkeeping that exists only to build events, so the uninstrumented
///   path performs no per-event heap allocation and no extra arithmetic
///   beyond a branch.
pub trait Recorder {
    /// Consumes one event stamped with simulated time `ts_ns`.
    fn record(&mut self, ts_ns: u64, event: Event);

    /// Whether events are wanted at all. Callers may (and the executor
    /// does) skip event construction entirely when this is `false`.
    fn enabled(&self) -> bool {
        true
    }
}

/// The statically no-op recorder: `enabled()` is `false`, `record` is an
/// empty inline body, so the uninstrumented executor path compiles down
/// to nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    #[inline(always)]
    fn record(&mut self, _ts_ns: u64, _event: Event) {}

    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
}

/// Buffers the event stream in memory for post-run export (Perfetto,
/// metrics, profiles).
#[derive(Debug, Clone, Default)]
pub struct CollectingRecorder {
    events: Vec<(u64, Event)>,
}

impl CollectingRecorder {
    /// Creates an empty collector.
    pub fn new() -> Self {
        Self::default()
    }

    /// The recorded `(timestamp, event)` stream, in emission order.
    pub fn events(&self) -> &[(u64, Event)] {
        &self.events
    }

    /// Consumes the collector, returning the stream.
    pub fn into_events(self) -> Vec<(u64, Event)> {
        self.events
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

impl Recorder for CollectingRecorder {
    fn record(&mut self, ts_ns: u64, event: Event) {
        self.events.push((ts_ns, event));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_recorder_is_disabled() {
        let mut r = NullRecorder;
        assert!(!r.enabled());
        r.record(1, Event::QueryArrive { query: 0 });
    }

    #[test]
    fn collector_buffers_in_order() {
        let mut r = CollectingRecorder::new();
        assert!(r.enabled());
        r.record(5, Event::QueryArrive { query: 1 });
        r.record(
            9,
            Event::BusTransfer {
                query: 1,
                queue_ns: 0,
                transfer_ns: 400_000,
            },
        );
        assert_eq!(r.len(), 2);
        assert!(!r.is_empty());
        assert_eq!(r.events()[0].0, 5);
        assert_eq!(r.events()[1].1.kind(), "bus_transfer");
        assert_eq!(r.events()[1].1.query(), Some(1));
        let evs = r.into_events();
        assert_eq!(evs.len(), 2);
    }

    #[test]
    fn event_kinds_are_distinct() {
        let evs = [
            Event::QueryArrive { query: 0 },
            Event::BatchIssued {
                query: 0,
                level: 0,
                level_max: 0,
                size: 1,
            },
            Event::CrssState {
                query: 0,
                d_th_sq: f64::INFINITY,
                stack_runs: 0,
                stack_candidates: 0,
            },
            Event::DiskFailed { disk: 1 },
            Event::DiskRecovered { disk: 1 },
            Event::DiskDegraded {
                disk: 1,
                until_ns: 5,
                multiplier: 2.0,
                extra_ns: 0,
            },
            Event::DegradedRead {
                query: 0,
                disk: 1,
                replica: 3,
            },
            Event::ReadRetry {
                query: 0,
                disk: 1,
                attempt: 1,
            },
            Event::QueryAbort {
                query: 0,
                disk: 1,
                attempts: 3,
            },
        ];
        let kinds: std::collections::HashSet<_> = evs.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds.len(), evs.len());
    }

    #[test]
    fn disk_level_events_have_no_query() {
        assert_eq!(Event::DiskFailed { disk: 0 }.query(), None);
        assert_eq!(Event::DiskRecovered { disk: 0 }.query(), None);
        assert_eq!(
            Event::DiskDegraded {
                disk: 0,
                until_ns: 1,
                multiplier: 1.5,
                extra_ns: 0,
            }
            .query(),
            None
        );
        assert_eq!(
            Event::QueryAbort {
                query: 9,
                disk: 0,
                attempts: 2,
            }
            .query(),
            Some(9)
        );
    }
}
