//! Replication statistics: online moments, confidence intervals, and
//! warm-up truncation for the experiment suite.
//!
//! The paper's Section 4 numbers are means over stochastic simulations
//! (Poisson arrivals, seeded declustering, random query points). One run
//! is a point estimate; this module turns N replicated runs — one
//! independent RNG stream each — into `mean ± 95% CI` summaries that the
//! bench bins write through `bench::report`.
//!
//! Moments use Welford's online update and Chan's pairwise merge, so the
//! accumulators stay accurate for adversarial series (large mean, small
//! variance) and can be combined across parallel sweep workers without a
//! second pass over raw samples.
//!
//! Open-system response-time experiments additionally need warm-up
//! handling: the first arrivals see an empty disk array and bias the
//! steady-state mean downward. [`truncate_warmup`] implements
//! fixed-fraction initial deletion (in arrival order), and
//! [`batch_means`] the classical batch-means reduction.

use crate::json::ObjWriter;

/// Welford/Chan online accumulator for count, mean, variance, min, max.
///
/// Unlike `sqda_simkernel::SampleStats` this does not retain samples, so
/// it is O(1) space and suited to long replicated sweeps; percentiles are
/// not available.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineMoments {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Folds one observation in (Welford's update).
    ///
    /// # Panics
    ///
    /// Panics if `x` is NaN.
    pub fn push(&mut self, x: f64) {
        assert!(!x.is_nan(), "NaN observation");
        if self.count == 0 {
            self.min = x;
            self.max = x;
        } else {
            self.min = self.min.min(x);
            self.max = self.max.max(x);
        }
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Combines two accumulators (Chan's parallel update); exact in the
    /// same error model as sequential pushes, with no pass over samples.
    pub fn merge(&mut self, other: &OnlineMoments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let (na, nb) = (self.count as f64, other.count as f64);
        let n = na + nb;
        let delta = other.mean - self.mean;
        self.mean += delta * nb / n;
        self.m2 += other.m2 + delta * delta * na * nb / n;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample variance (n−1 denominator); 0 with < 2 observations.
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            // Analytically non-negative; clamp rounding residue.
            self.m2.max(0.0) / (self.count - 1) as f64
        }
    }

    /// Sample standard deviation; 0 with < 2 observations.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Half-width of the 95% confidence interval for the mean under the
    /// normal approximation (`1.96·s/√n`); 0 with < 2 observations.
    pub fn ci95_half_width(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            1.96 * self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Smallest observation; 0 when empty.
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Largest observation; 0 when empty.
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Freezes the accumulator into a [`MetricSummary`].
    pub fn summary(&self) -> MetricSummary {
        MetricSummary {
            count: self.count,
            mean: self.mean(),
            std_dev: self.std_dev(),
            ci95_half_width: self.ci95_half_width(),
            min: self.min(),
            max: self.max(),
        }
    }
}

/// Frozen `mean ± CI` summary of one metric over N replications, as it
/// appears in `BENCH_summary.json` schema v2.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct MetricSummary {
    /// Number of replications folded in.
    pub count: u64,
    /// Mean over replications.
    pub mean: f64,
    /// Sample standard deviation over replications.
    pub std_dev: f64,
    /// Half-width of the 95% CI for the mean.
    pub ci95_half_width: f64,
    /// Smallest replication value.
    pub min: f64,
    /// Largest replication value.
    pub max: f64,
}

impl MetricSummary {
    /// Summarizes a slice of per-replication values.
    pub fn from_samples(samples: &[f64]) -> Self {
        let mut m = OnlineMoments::new();
        for &s in samples {
            m.push(s);
        }
        m.summary()
    }

    /// Appends this summary's fields to an in-progress JSON object.
    pub fn write_fields(&self, w: &mut ObjWriter) {
        w.field_u64("count", self.count);
        w.field_f64("mean", self.mean);
        w.field_f64("std_dev", self.std_dev);
        w.field_f64("ci95", self.ci95_half_width);
        w.field_f64("min", self.min);
        w.field_f64("max", self.max);
    }

    /// Serializes to a standalone JSON object (deterministic bytes).
    pub fn to_json(&self) -> String {
        let mut w = ObjWriter::new();
        self.write_fields(&mut w);
        w.finish()
    }
}

/// Drops the warm-up prefix of an arrival-ordered series: the first
/// `⌊n·fraction⌋` samples are deleted. `fraction` is clamped to
/// `[0, 1]`; with `fraction = 0` the full series is returned.
///
/// This is the fixed-fraction initial-deletion rule: crude but robust,
/// and standard practice for open-system simulations whose transient is
/// short relative to the run (Law & Kelton §9.5.1).
pub fn truncate_warmup(samples: &[f64], fraction: f64) -> &[f64] {
    let f = fraction.clamp(0.0, 1.0);
    let drop = (samples.len() as f64 * f).floor() as usize;
    &samples[drop.min(samples.len())..]
}

/// Reduces an arrival-ordered series to `batches` batch means (equal
/// contiguous batches; a non-divisible tail is folded into the last
/// batch). Batch means are far closer to independent than raw
/// autocorrelated response times, so CIs over them are honest.
///
/// Returns an empty vector when `batches == 0` or there are fewer
/// samples than batches.
pub fn batch_means(samples: &[f64], batches: usize) -> Vec<f64> {
    if batches == 0 || samples.len() < batches {
        return Vec::new();
    }
    let base = samples.len() / batches;
    let mut out = Vec::with_capacity(batches);
    for b in 0..batches {
        let start = b * base;
        let end = if b + 1 == batches {
            samples.len()
        } else {
            start + base
        };
        let chunk = &samples[start..end];
        out.push(chunk.iter().sum::<f64>() / chunk.len() as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// SplitMix64 — local copy so these tests stay dependency-free
    /// (sqda-obs deliberately has no `rand`).
    fn splitmix64(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    struct Rng(u64);
    impl Rng {
        fn next_u64(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
            splitmix64(self.0)
        }
        /// Uniform in (0, 1].
        fn uniform(&mut self) -> f64 {
            ((self.next_u64() >> 11) + 1) as f64 / (1u64 << 53) as f64
        }
        /// Standard normal via Box–Muller.
        fn normal(&mut self) -> f64 {
            let (u1, u2) = (self.uniform(), self.uniform());
            (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
        }
        /// Exponential with rate 1 (mean 1).
        fn exponential(&mut self) -> f64 {
            -self.uniform().ln()
        }
    }

    #[test]
    fn moments_match_closed_form() {
        let mut m = OnlineMoments::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            m.push(x);
        }
        assert_eq!(m.count(), 8);
        assert!((m.mean() - 5.0).abs() < 1e-12);
        assert!((m.std_dev() - 2.138_089_935).abs() < 1e-8);
        assert_eq!(m.min(), 2.0);
        assert_eq!(m.max(), 9.0);
        let s = m.summary();
        assert_eq!(s, MetricSummary::from_samples(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]));
        assert!((s.ci95_half_width - 1.96 * s.std_dev / 8f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn empty_and_singleton_are_defined() {
        let empty = OnlineMoments::new();
        assert_eq!(empty.summary(), MetricSummary::default());
        let mut one = OnlineMoments::new();
        one.push(3.5);
        let s = one.summary();
        assert_eq!((s.count, s.mean, s.std_dev, s.ci95_half_width), (1, 3.5, 0.0, 0.0));
        assert_eq!((s.min, s.max), (3.5, 3.5));
    }

    #[test]
    fn merge_matches_sequential_and_is_stable() {
        let mut rng = Rng(7);
        let xs: Vec<f64> = (0..501).map(|_| 1.0e8 + rng.normal()).collect();
        let mut whole = OnlineMoments::new();
        let mut parts = [OnlineMoments::new(), OnlineMoments::new(), OnlineMoments::new()];
        for (i, &x) in xs.iter().enumerate() {
            whole.push(x);
            parts[i % 3].push(x);
        }
        let mut merged = OnlineMoments::new();
        for p in &parts {
            merged.merge(p);
        }
        assert_eq!(merged.count(), whole.count());
        assert!((merged.mean() - whole.mean()).abs() < 1e-6);
        assert!((merged.std_dev() - whole.std_dev()).abs() < 1e-6);
        assert!(merged.std_dev() > 0.5, "variance collapsed at large mean");
        assert_eq!(merged.min(), whole.min());
        assert_eq!(merged.max(), whole.max());
    }

    #[test]
    fn ci_covers_true_mean_for_normal_samples() {
        // 1000 replicated "experiments" of 40 N(10, 2²) samples each:
        // the 95% CI must contain the true mean in ~95% of trials.
        let mut rng = Rng(42);
        let mut covered = 0;
        for _ in 0..1000 {
            let mut m = OnlineMoments::new();
            for _ in 0..40 {
                m.push(10.0 + 2.0 * rng.normal());
            }
            if (m.mean() - 10.0).abs() <= m.ci95_half_width() {
                covered += 1;
            }
        }
        assert!(
            (920..=980).contains(&covered),
            "normal CI coverage {covered}/1000, expected ≈950"
        );
    }

    #[test]
    fn ci_covers_true_mean_for_exponential_samples() {
        // Same protocol on a skewed distribution (Exp(1), true mean 1).
        // The normal approximation under-covers slightly at n=40; accept
        // a wider band but still centred near 95%.
        let mut rng = Rng(4242);
        let mut covered = 0;
        for _ in 0..1000 {
            let mut m = OnlineMoments::new();
            for _ in 0..40 {
                m.push(rng.exponential());
            }
            if (m.mean() - 1.0).abs() <= m.ci95_half_width() {
                covered += 1;
            }
        }
        assert!(
            (890..=975).contains(&covered),
            "exponential CI coverage {covered}/1000, expected ≈930–950"
        );
    }

    #[test]
    fn warmup_truncation_removes_transient_bias() {
        // Seeded transient workload: an empty-system ramp where the first
        // fifth of arrivals respond fast, then a noisy steady state at 5.
        let mut rng = Rng(99);
        let mut series = Vec::new();
        for i in 0..500 {
            let steady = 5.0 + 0.3 * rng.normal();
            let ramp = if i < 100 { -4.0 * (1.0 - i as f64 / 100.0) } else { 0.0 };
            series.push(steady + ramp);
        }
        let raw = MetricSummary::from_samples(&series);
        let trimmed = MetricSummary::from_samples(truncate_warmup(&series, 0.2));
        assert_eq!(trimmed.count, 400);
        assert!((trimmed.mean - 5.0).abs() < 0.05, "trimmed {}", trimmed.mean);
        // The untrimmed mean carries the ramp bias of −2·(100/500) = −0.4.
        assert!(raw.mean < trimmed.mean - 0.3, "raw {} trimmed {}", raw.mean, trimmed.mean);
    }

    #[test]
    fn truncate_warmup_edge_cases() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(truncate_warmup(&v, 0.0), &v);
        assert_eq!(truncate_warmup(&v, 0.5), &[3.0, 4.0]);
        assert_eq!(truncate_warmup(&v, 1.0), &[] as &[f64]);
        assert_eq!(truncate_warmup(&v, 7.0), &[] as &[f64]); // clamped
        assert_eq!(truncate_warmup(&[], 0.5), &[] as &[f64]);
        // ⌊4·0.2⌋ = 0: small series are kept whole.
        assert_eq!(truncate_warmup(&v, 0.2), &v);
    }

    #[test]
    fn batch_means_reduction() {
        let v: Vec<f64> = (1..=10).map(|x| x as f64).collect();
        assert_eq!(batch_means(&v, 2), vec![3.0, 8.0]);
        // Non-divisible tail folds into the last batch.
        assert_eq!(batch_means(&v, 3), vec![2.0, 5.0, 8.5]);
        assert_eq!(batch_means(&v, 0), Vec::<f64>::new());
        assert_eq!(batch_means(&v[..2], 3), Vec::<f64>::new());
        let overall: f64 = batch_means(&v, 5).iter().sum::<f64>() / 5.0;
        assert!((overall - 5.5).abs() < 1e-12);
    }

    #[test]
    fn summary_json_bytes_are_deterministic() {
        // Samples chosen so every summary field is exactly representable:
        // mean 0.5, std 0.25, ci95 = 1.96·0.25/√3 (pinned via format!).
        let s = MetricSummary::from_samples(&[0.25, 0.5, 0.75]);
        let a = s.to_json();
        assert_eq!(a, s.to_json());
        let expected = format!(
            "{{\"count\":3,\"mean\":0.5,\"std_dev\":0.25,\"ci95\":{},\
             \"min\":0.25,\"max\":0.75}}",
            1.96 * 0.25 / 3f64.sqrt()
        );
        assert_eq!(a, expected);
        // Degenerate summaries stay integral-formatted and byte-stable.
        let one = MetricSummary::from_samples(&[1.0, 1.0]);
        assert_eq!(
            one.to_json(),
            "{\"count\":2,\"mean\":1,\"std_dev\":0,\"ci95\":0,\"min\":1,\"max\":1}"
        );
    }
}
