//! File sinks: assemble and write the `--trace` / `--metrics` documents
//! shared by the CLI and the experiment binaries.

use crate::event::Event;
use crate::metrics::MetricsSnapshot;
use crate::profile::query_profiles;
use sqda_storage::IoStats;
use std::io;
use std::path::Path;

/// Builds the trace document for `path`: the raw JSONL event log when
/// the file extension is `.jsonl`, Chrome/Perfetto `trace_event` JSON
/// (loadable at <https://ui.perfetto.dev>) otherwise.
pub fn trace_document(
    path: &Path,
    events: &[(u64, Event)],
    num_disks: u32,
    num_cpus: u32,
) -> String {
    if path.extension().is_some_and(|e| e == "jsonl") {
        crate::jsonl::events_to_jsonl(events)
    } else {
        crate::perfetto::chrome_trace(events, num_disks, num_cpus)
    }
}

/// Builds the metrics document: a JSON object with the aggregate
/// [`MetricsSnapshot`] under `"snapshot"` and the per-query
/// [`crate::QueryProfile`]s under `"profiles"`.
pub fn metrics_document(events: &[(u64, Event)], io: Option<&IoStats>) -> String {
    let mut snap = MetricsSnapshot::from_events(events);
    if let Some(io) = io {
        snap.fold_io_stats(io);
    }
    let profiles: Vec<String> = query_profiles(events).iter().map(|p| p.to_json()).collect();
    format!(
        "{{\"snapshot\":{},\"profiles\":[{}]}}\n",
        snap.to_json(),
        profiles.join(",")
    )
}

/// Writes whichever of the two sinks have paths set: `trace` receives
/// [`trace_document`], `metrics` receives [`metrics_document`].
pub fn write_observability(
    events: &[(u64, Event)],
    num_disks: u32,
    num_cpus: u32,
    io: Option<&IoStats>,
    trace: Option<&Path>,
    metrics: Option<&Path>,
) -> io::Result<()> {
    if let Some(path) = trace {
        std::fs::write(path, trace_document(path, events, num_disks, num_cpus))?;
    }
    if let Some(path) = metrics {
        std::fs::write(path, metrics_document(events, io))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};

    fn sample_events() -> Vec<(u64, Event)> {
        vec![
            (0, Event::QueryArrive { query: 0 }),
            (
                1_000_000,
                Event::DiskService {
                    query: 0,
                    disk: 0,
                    cylinder: 3,
                    level: 0,
                    queue_ns: 0,
                    seek_ns: 100,
                    rotation_ns: 200,
                    transfer_ns: 300,
                    queue_depth: 1,
                },
            ),
            (
                2_000_000,
                Event::QueryComplete {
                    query: 0,
                    response_ns: 2_000_000,
                    nodes: 1,
                    batches: 1,
                    disk_queue_ns: 0,
                    seek_ns: 100,
                    rotation_ns: 200,
                    transfer_ns: 300,
                    bus_queue_ns: 0,
                    bus_ns: 400,
                    cpu_queue_ns: 0,
                    cpu_ns: 500,
                },
            ),
        ]
    }

    #[test]
    fn trace_document_picks_format_by_extension() {
        let events = sample_events();
        let jsonl = trace_document(Path::new("t.jsonl"), &events, 2, 1);
        assert!(jsonl.starts_with("{\"ts\":0,\"type\":\"query_arrive\""));
        let chrome = trace_document(Path::new("t.json"), &events, 2, 1);
        let doc = parse(&chrome).expect("valid JSON");
        assert!(doc.get("traceEvents").is_some());
    }

    #[test]
    fn metrics_document_is_valid_json_with_profiles() {
        let events = sample_events();
        let doc = parse(metrics_document(&events, None).trim()).expect("valid JSON");
        assert!(doc.get("snapshot").is_some());
        let profiles = doc
            .get("profiles")
            .and_then(Value::as_arr)
            .expect("profiles array");
        assert_eq!(profiles.len(), 1);
    }
}
