//! A minimal JSON writer and reader.
//!
//! The workspace's approved dependency set has no JSON crate, and the
//! observability exports need only a small, deterministic subset: objects,
//! arrays, strings, integers and finite floats. The writer produces
//! canonical output (no whitespace options, shortest-round-trip float
//! formatting via Rust's `{}`), which is what the golden-file tests pin.
//! The reader is a strict recursive-descent parser used by the trace
//! validation tests and the `validate_trace` binary.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. `BTreeMap` keeps iteration deterministic.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The value under `key` if this is an object containing it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The elements if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The string contents if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The number if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The number as u64 if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends a JSON number to `out`. Non-finite floats become `null`
/// (JSON has no Infinity/NaN), which is how the event schema encodes an
/// unbounded threshold distance.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// An incremental writer for one JSON object: `{"k":v,...}`.
///
/// ```
/// use sqda_obs::json::ObjWriter;
/// let mut o = ObjWriter::new();
/// o.field_str("name", "disk 3");
/// o.field_u64("reads", 42);
/// assert_eq!(o.finish(), r#"{"name":"disk 3","reads":42}"#);
/// ```
#[derive(Debug, Default)]
pub struct ObjWriter {
    buf: String,
    any: bool,
}

impl ObjWriter {
    /// Starts an empty object.
    pub fn new() -> Self {
        Self {
            buf: String::from("{"),
            any: false,
        }
    }

    fn key(&mut self, name: &str) {
        if self.any {
            self.buf.push(',');
        }
        self.any = true;
        write_str(&mut self.buf, name);
        self.buf.push(':');
    }

    /// Adds a string field.
    pub fn field_str(&mut self, name: &str, v: &str) -> &mut Self {
        self.key(name);
        write_str(&mut self.buf, v);
        self
    }

    /// Adds an unsigned integer field.
    pub fn field_u64(&mut self, name: &str, v: u64) -> &mut Self {
        self.key(name);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Adds a float field (`null` when not finite).
    pub fn field_f64(&mut self, name: &str, v: f64) -> &mut Self {
        self.key(name);
        write_f64(&mut self.buf, v);
        self
    }

    /// Adds a boolean field.
    pub fn field_bool(&mut self, name: &str, v: bool) -> &mut Self {
        self.key(name);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Adds a field whose value is already-rendered JSON.
    pub fn field_raw(&mut self, name: &str, json: &str) -> &mut Self {
        self.key(name);
        self.buf.push_str(json);
        self
    }

    /// Closes the object and returns the JSON text.
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

/// Renders a slice of u64 as a JSON array.
pub fn u64_array(vals: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    out
}

/// Renders a slice of f64 as a JSON array (`null` for non-finite).
pub fn f64_array(vals: &[f64]) -> String {
    let mut out = String::from("[");
    for (i, v) in vals.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_f64(&mut out, *v);
    }
    out.push(']');
    out
}

/// Parses a complete JSON document.
///
/// # Errors
///
/// Returns a message describing the first syntax error (with byte
/// offset) on malformed input or trailing garbage.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        while let Some(b) = self.peek() {
            match b {
                b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9' => self.pos += 1,
                _ => break,
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        s.parse::<f64>()
            .map(Value::Num)
            .map_err(|e| format!("bad number {s:?} at byte {start}: {e}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err("unterminated string".into());
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err("unterminated escape".into());
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|e| e.to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|e| format!("bad \\u escape {hex:?}: {e}"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                b if b < 0x80 => out.push(b as char),
                _ => {
                    // Multi-byte UTF-8: re-decode from the byte before.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    if end > self.bytes.len() {
                        return Err("truncated UTF-8".into());
                    }
                    let s =
                        std::str::from_utf8(&self.bytes[start..end]).map_err(|e| e.to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_roundtrips_through_parser() {
        let mut o = ObjWriter::new();
        o.field_str("name", "q \"7\"\n");
        o.field_u64("count", 18446744073709551615);
        o.field_f64("dk", 2.5);
        o.field_f64("inf", f64::INFINITY);
        o.field_bool("leaf", true);
        o.field_raw("tail", &u64_array(&[1, 2, 3]));
        let text = o.finish();
        let v = parse(&text).unwrap();
        assert_eq!(v.get("name").unwrap().as_str().unwrap(), "q \"7\"\n");
        assert_eq!(v.get("dk").unwrap().as_f64().unwrap(), 2.5);
        assert_eq!(v.get("inf").unwrap(), &Value::Null);
        assert_eq!(v.get("leaf").unwrap(), &Value::Bool(true));
        assert_eq!(v.get("tail").unwrap().as_arr().unwrap().len(), 3);
        // u64::MAX exceeds f64 precision; the parser still accepts it.
        assert!(v.get("count").unwrap().as_f64().unwrap() > 1e19);
    }

    #[test]
    fn parses_nested_documents() {
        let v = parse(r#"{"a":[1,{"b":null},"x"],"c":{"d":-2.5e1}}"#).unwrap();
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].get("b"), Some(&Value::Null));
        assert_eq!(v.get("c").unwrap().get("d").unwrap().as_f64(), Some(-25.0));
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("").is_err());
        assert!(parse("{\"a\":truthy}").is_err());
    }

    #[test]
    fn unicode_and_escapes() {
        let v = parse(r#""café – ügy""#).unwrap();
        assert_eq!(v.as_str().unwrap(), "café – ügy");
        let mut s = String::new();
        write_str(&mut s, "tab\tügy");
        assert_eq!(parse(&s).unwrap().as_str().unwrap(), "tab\tügy");
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), Value::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), Value::Obj(BTreeMap::new()));
        assert_eq!(u64_array(&[]), "[]");
        assert_eq!(f64_array(&[f64::NAN]), "[null]");
    }
}
