//! Prometheus text exposition of the live telemetry registry, plus a
//! strict lint for the produced format.
//!
//! The format follows the Prometheus text exposition conventions the
//! ecosystem's scrapers accept: every metric family is announced with
//! `# HELP` and `# TYPE` lines, histogram samples are cumulative
//! `_bucket{le="..."}` series closed by an `le="+Inf"` bucket plus
//! `_sum`/`_count`, and the document ends with a `# EOF` marker — which
//! doubles as the reply terminator for the line-oriented `METRICS`
//! protocol verb (a scraper reads until `# EOF`).
//!
//! [`lint`] re-parses a rendered document and checks the invariants the
//! CI smoke job relies on: HELP/TYPE present for every sampled family,
//! bucket counts cumulative and monotone with ascending `le` bounds,
//! `_count` equal to the `+Inf` bucket, `_sum` present for every
//! histogram, and the trailing `# EOF`.

use crate::live::LiveTelemetry;
use crate::metrics::Histogram;
use sqda_storage::IoStats;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Metric name prefix shared by every family.
const PREFIX: &str = "sqda";

fn header(out: &mut String, name: &str, help: &str, kind: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {kind}");
}

fn labels_to_string(labels: &[(&str, String)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut s = String::from("{");
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        let _ = write!(s, "{k}=\"{v}\"");
    }
    s.push('}');
    s
}

fn counter_u64(out: &mut String, name: &str, help: &str, v: u64) {
    header(out, name, help, "counter");
    let _ = writeln!(out, "{name} {v}");
}

fn gauge_f64(out: &mut String, name: &str, help: &str, v: f64) {
    header(out, name, help, "gauge");
    let _ = writeln!(out, "{name} {v}");
}

/// Renders one histogram family: HELP/TYPE once, then for each
/// `(labels, histogram)` series the cumulative buckets, `_sum` and
/// `_count` carrying the series labels.
fn histogram_family(
    out: &mut String,
    name: &str,
    help: &str,
    series: &[(Vec<(&'static str, String)>, Histogram)],
) {
    header(out, name, help, "histogram");
    for (labels, h) in series {
        let mut cum = 0u64;
        for (i, &b) in h.buckets().iter().enumerate() {
            cum += b;
            let mut ls: Vec<(&str, String)> = labels.clone();
            let le = if i < h.bounds().len() {
                format!("{}", h.bounds()[i])
            } else {
                "+Inf".to_string()
            };
            ls.push(("le", le));
            let _ = writeln!(out, "{name}_bucket{} {cum}", labels_to_string(&ls));
        }
        let suffix = labels_to_string(labels);
        let _ = writeln!(out, "{name}_sum{suffix} {}", h.sum());
        let _ = writeln!(out, "{name}_count{suffix} {}", h.count());
    }
}

/// Renders the whole live registry (and, when given, the store's
/// [`IoStats`]) as Prometheus text exposition terminated by `# EOF`.
pub fn render(t: &LiveTelemetry, io: Option<&IoStats>) -> String {
    let mut out = String::new();
    let uptime_ns = t.now_ns();

    counter_u64(
        &mut out,
        &format!("{PREFIX}_queries_started_total"),
        "Queries picked up by a worker.",
        t.queries_started.get(),
    );
    counter_u64(
        &mut out,
        &format!("{PREFIX}_queries_completed_total"),
        "Queries that completed with an answer.",
        t.queries_completed.get(),
    );
    counter_u64(
        &mut out,
        &format!("{PREFIX}_queries_failed_total"),
        "Queries that aborted with a typed error.",
        t.queries_failed.get(),
    );
    counter_u64(
        &mut out,
        &format!("{PREFIX}_slow_queries_total"),
        "Completed queries over the slow-query threshold.",
        t.slow_queries.get(),
    );
    counter_u64(
        &mut out,
        &format!("{PREFIX}_degraded_reads_total"),
        "Reads served by a shadow replica while a primary was failed.",
        t.degraded_reads.get(),
    );
    gauge_f64(
        &mut out,
        &format!("{PREFIX}_inflight_queries"),
        "Queries currently being served.",
        t.inflight() as f64,
    );
    gauge_f64(
        &mut out,
        &format!("{PREFIX}_uptime_seconds"),
        "Seconds since the telemetry registry was created.",
        uptime_ns as f64 / 1e9,
    );

    let w = t.window_stats();
    gauge_f64(
        &mut out,
        &format!("{PREFIX}_window_qps"),
        "Completions per second over the sliding window.",
        w.qps,
    );
    gauge_f64(
        &mut out,
        &format!("{PREFIX}_window_response_p50_ms"),
        "Windowed median response time, ms.",
        w.p50_ms,
    );
    gauge_f64(
        &mut out,
        &format!("{PREFIX}_window_response_p95_ms"),
        "Windowed 95th-percentile response time, ms.",
        w.p95_ms,
    );
    gauge_f64(
        &mut out,
        &format!("{PREFIX}_window_response_p99_ms"),
        "Windowed 99th-percentile response time, ms.",
        w.p99_ms,
    );
    gauge_f64(
        &mut out,
        &format!("{PREFIX}_model_residual_accesses"),
        "Windowed mean observed-minus-predicted node accesses.",
        t.residual_accesses_mean(),
    );
    gauge_f64(
        &mut out,
        &format!("{PREFIX}_model_residual_latency"),
        "Windowed mean observed-minus-predicted response time, ms.",
        t.residual_latency_mean_ms(),
    );

    histogram_family(
        &mut out,
        &format!("{PREFIX}_response_ms"),
        "Query response time, ms.",
        &[(vec![], t.response_ms.snapshot())],
    );
    histogram_family(
        &mut out,
        &format!("{PREFIX}_query_disk_queue_ms"),
        "Per-query total time requests waited in disk queues, ms.",
        &[(vec![], t.disk_queue_ms.snapshot())],
    );
    histogram_family(
        &mut out,
        &format!("{PREFIX}_query_disk_service_ms"),
        "Per-query total disk service time, ms.",
        &[(vec![], t.disk_service_ms.snapshot())],
    );
    histogram_family(
        &mut out,
        &format!("{PREFIX}_query_cpu_ms"),
        "Per-query total CPU time, ms.",
        &[(vec![], t.cpu_ms.snapshot())],
    );
    histogram_family(
        &mut out,
        &format!("{PREFIX}_batch_size"),
        "Pages per fetch batch.",
        &[(vec![], t.batch_size.snapshot())],
    );

    // Per-disk families, one series per disk labeled disk="i".
    let disks = t.disks();
    let label = |i: usize| vec![("disk", i.to_string())];
    {
        let name = format!("{PREFIX}_disk_reads_total");
        header(
            &mut out,
            &name,
            "Reads served by this disk's worker.",
            "counter",
        );
        for (i, d) in disks.iter().enumerate() {
            let _ = writeln!(
                out,
                "{name}{} {}",
                labels_to_string(&label(i)),
                d.requests.get()
            );
        }
    }
    {
        let name = format!("{PREFIX}_disk_busy_seconds_total");
        header(
            &mut out,
            &name,
            "Cumulative read service time on this disk, seconds.",
            "counter",
        );
        for (i, d) in disks.iter().enumerate() {
            let _ = writeln!(
                out,
                "{name}{} {}",
                labels_to_string(&label(i)),
                d.busy_ns.get() as f64 / 1e9
            );
        }
    }
    {
        let name = format!("{PREFIX}_disk_queue_seconds_total");
        header(
            &mut out,
            &name,
            "Cumulative time requests waited in this disk's queue, seconds.",
            "counter",
        );
        for (i, d) in disks.iter().enumerate() {
            let _ = writeln!(
                out,
                "{name}{} {}",
                labels_to_string(&label(i)),
                d.queue_ns.get() as f64 / 1e9
            );
        }
    }
    {
        let name = format!("{PREFIX}_disk_queue_depth");
        header(
            &mut out,
            &name,
            "Queue depth seen by the most recent submission.",
            "gauge",
        );
        for (i, d) in disks.iter().enumerate() {
            let _ = writeln!(
                out,
                "{name}{} {}",
                labels_to_string(&label(i)),
                d.depth.load(std::sync::atomic::Ordering::Relaxed)
            );
        }
    }
    {
        let name = format!("{PREFIX}_disk_utilization");
        header(
            &mut out,
            &name,
            "Fraction of uptime this disk spent servicing reads.",
            "gauge",
        );
        for (i, d) in disks.iter().enumerate() {
            let _ = writeln!(
                out,
                "{name}{} {}",
                labels_to_string(&label(i)),
                d.utilization(uptime_ns)
            );
        }
    }
    histogram_family(
        &mut out,
        &format!("{PREFIX}_disk_service_time_ms"),
        "Per-read disk service time, ms.",
        &disks
            .iter()
            .enumerate()
            .map(|(i, d)| (label(i), d.service_ms.snapshot()))
            .collect::<Vec<_>>(),
    );
    histogram_family(
        &mut out,
        &format!("{PREFIX}_disk_queue_time_ms"),
        "Per-read time-in-queue at the disk, ms.",
        &disks
            .iter()
            .enumerate()
            .map(|(i, d)| (label(i), d.queue_time_ms.snapshot()))
            .collect::<Vec<_>>(),
    );

    if let Some(io) = io {
        counter_u64(
            &mut out,
            &format!("{PREFIX}_cache_hits_total"),
            "Node-cache hits at the store.",
            io.cache_hits,
        );
        counter_u64(
            &mut out,
            &format!("{PREFIX}_cache_misses_total"),
            "Node-cache misses at the store.",
            io.cache_misses,
        );
        let total = io.cache_hits + io.cache_misses;
        gauge_f64(
            &mut out,
            &format!("{PREFIX}_cache_hit_ratio"),
            "Node-cache hit ratio in [0,1].",
            if total == 0 {
                0.0
            } else {
                io.cache_hits as f64 / total as f64
            },
        );
        gauge_f64(
            &mut out,
            &format!("{PREFIX}_cache_resident_bytes"),
            "Bytes resident in the decoded-node cache.",
            io.cache_resident_bytes as f64,
        );
        gauge_f64(
            &mut out,
            &format!("{PREFIX}_cache_byte_budget"),
            "Byte budget of the decoded-node cache (0 = entry-capped).",
            io.cache_byte_budget as f64,
        );
        counter_u64(
            &mut out,
            &format!("{PREFIX}_store_reads_total"),
            "Physical page reads at the store.",
            io.reads,
        );
        let name = format!("{PREFIX}_store_disk_reads_total");
        header(
            &mut out,
            &name,
            "Physical page reads per disk at the store.",
            "counter",
        );
        for (i, r) in io.reads_per_disk.iter().enumerate() {
            let _ = writeln!(out, "{name}{} {r}", labels_to_string(&label(i)));
        }
    }

    if let Some(flight) = t.flight() {
        counter_u64(
            &mut out,
            &format!("{PREFIX}_flight_events_total"),
            "Events recorded by the flight recorder (retention is bounded).",
            flight.recorded(),
        );
    }

    out.push_str("# EOF\n");
    out
}

/// One parsed sample line.
struct Sample<'a> {
    name: &'a str,
    labels: BTreeMap<&'a str, &'a str>,
    value: f64,
}

fn parse_sample(line: &str) -> Option<Sample<'_>> {
    let (head, value) = line.rsplit_once(' ')?;
    let value: f64 = value.parse().ok()?;
    let (name, labels) = match head.find('{') {
        Some(open) => {
            let name = &head[..open];
            let body = head[open + 1..].strip_suffix('}')?;
            let mut labels = BTreeMap::new();
            for pair in body.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = pair.split_once('=')?;
                labels.insert(k, v.strip_prefix('"')?.strip_suffix('"')?);
            }
            (name, labels)
        }
        None => (head, BTreeMap::new()),
    };
    Some(Sample {
        name,
        labels,
        value,
    })
}

/// The family a sample belongs to: histogram sample suffixes map back to
/// the declared family name.
fn family_of<'a>(name: &'a str, histograms: &BTreeMap<&'a str, ()>) -> &'a str {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if histograms.contains_key(base) {
                return base;
            }
        }
    }
    name
}

/// Lints a rendered exposition document. Returns the violated
/// invariants, empty when the document is clean.
pub fn lint(text: &str) -> Vec<String> {
    let mut errors = Vec::new();
    let mut help: BTreeMap<&str, ()> = BTreeMap::new();
    let mut types: BTreeMap<&str, &str> = BTreeMap::new();
    let mut histograms: BTreeMap<&str, ()> = BTreeMap::new();

    // Pass 1: declarations.
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            if let Some((name, _)) = rest.split_once(' ') {
                help.insert(name, ());
            } else {
                errors.push(format!("HELP line without text: {line:?}"));
            }
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            if let Some((name, kind)) = rest.split_once(' ') {
                types.insert(name, kind);
                if kind == "histogram" {
                    histograms.insert(name, ());
                }
            } else {
                errors.push(format!("TYPE line without kind: {line:?}"));
            }
        }
    }

    if text.lines().last() != Some("# EOF") {
        errors.push("document does not end with # EOF".into());
    }

    // Pass 2: samples. Histogram bucket series are grouped by family +
    // non-le labels so multi-series (per-disk) families lint per disk.
    type SeriesKey<'a> = (&'a str, Vec<(&'a str, &'a str)>);
    let mut buckets: BTreeMap<SeriesKey<'_>, Vec<(f64, u64)>> = BTreeMap::new();
    let mut sums: BTreeMap<SeriesKey<'_>, f64> = BTreeMap::new();
    let mut counts: BTreeMap<SeriesKey<'_>, u64> = BTreeMap::new();

    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let Some(s) = parse_sample(line) else {
            errors.push(format!("unparseable sample line: {line:?}"));
            continue;
        };
        let family = family_of(s.name, &histograms);
        if !help.contains_key(family) {
            errors.push(format!("sample {:?} has no # HELP for {family}", s.name));
        }
        if !types.contains_key(family) {
            errors.push(format!("sample {:?} has no # TYPE for {family}", s.name));
            continue;
        }
        if histograms.contains_key(family) {
            let rest: Vec<(&str, &str)> = s
                .labels
                .iter()
                .filter(|(k, _)| **k != "le")
                .map(|(k, v)| (*k, *v))
                .collect();
            let key = (family, rest);
            if s.name.ends_with("_bucket") {
                let Some(le) = s.labels.get("le") else {
                    errors.push(format!("bucket without le label: {line:?}"));
                    continue;
                };
                let bound = if *le == "+Inf" {
                    f64::INFINITY
                } else {
                    match le.parse::<f64>() {
                        Ok(b) => b,
                        Err(_) => {
                            errors.push(format!("bad le bound {le:?} in {line:?}"));
                            continue;
                        }
                    }
                };
                buckets.entry(key).or_default().push((bound, s.value as u64));
            } else if s.name.ends_with("_sum") {
                sums.insert(key, s.value);
            } else if s.name.ends_with("_count") {
                counts.insert(key, s.value as u64);
            }
        }
    }

    for (key, series) in &buckets {
        let label = format!("{}{:?}", key.0, key.1);
        for pair in series.windows(2) {
            if pair[1].0 <= pair[0].0 {
                errors.push(format!("{label}: le bounds not ascending"));
            }
            if pair[1].1 < pair[0].1 {
                errors.push(format!("{label}: cumulative buckets not monotone"));
            }
        }
        let Some(&(last_bound, last_cum)) = series.last() else {
            continue;
        };
        if !last_bound.is_infinite() {
            errors.push(format!("{label}: missing le=\"+Inf\" bucket"));
        }
        match counts.get(key) {
            Some(&c) if c == last_cum => {}
            Some(&c) => errors.push(format!(
                "{label}: _count {c} != +Inf bucket {last_cum}"
            )),
            None => errors.push(format!("{label}: missing _count")),
        }
        if !sums.contains_key(key) {
            errors.push(format!("{label}: missing _sum"));
        }
    }
    for key in counts.keys() {
        if !buckets.contains_key(key) {
            errors.push(format!("{}{:?}: _count without buckets", key.0, key.1));
        }
    }

    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::live::QueryObservation;

    fn populated() -> LiveTelemetry {
        let t = LiveTelemetry::new(2).with_flight_recorder(32);
        for q in 0..5u32 {
            let id = t.begin_query();
            assert_eq!(id, q);
            t.observe_disk_read((q % 2) as u32, 200_000, 1_500_000, q);
            t.observe_query(&QueryObservation {
                query: id,
                algo: "CRSS",
                k: 10,
                answers: 10,
                nodes: 12,
                batches: 3,
                response_ns: (q as u64 + 1) * 2_000_000,
                disk_queue_ns: 200_000,
                disk_service_ns: 1_500_000,
                cpu_ns: 90_000,
                failed: false,
            });
        }
        t
    }

    #[test]
    fn render_passes_lint() {
        let t = populated();
        let io = sqda_storage::IoStats {
            reads: 60,
            writes: 0,
            reads_per_disk: vec![31, 29],
            writes_per_disk: vec![0, 0],
            cache_hits: 40,
            cache_misses: 60,
            cache_resident_bytes: 12_288,
            cache_byte_budget: 65_536,
            ..sqda_storage::IoStats::default()
        };
        let text = render(&t, Some(&io));
        let errors = lint(&text);
        assert!(errors.is_empty(), "lint errors: {errors:#?}");
        assert!(text.ends_with("# EOF\n"));
        assert!(text.contains("sqda_queries_completed_total 5"));
        assert!(text.contains("sqda_model_residual_accesses 0"));
        assert!(text.contains("sqda_model_residual_latency 0"));
        assert!(text.contains("sqda_cache_resident_bytes 12288"));
        assert!(text.contains("sqda_cache_byte_budget 65536"));
        assert!(text.contains("sqda_response_ms_count 5"));
        assert!(text.contains("sqda_disk_reads_total{disk=\"0\"} 3"));
        assert!(text.contains("sqda_cache_hit_ratio 0.4"));
        assert!(text.contains("sqda_disk_service_time_ms_bucket{disk=\"1\",le=\"+Inf\"} 2"));
        assert!(text.contains("sqda_flight_events_total"));
    }

    /// The full exposition for a fixed registry, pinned byte-for-byte
    /// (wall-clock-dependent gauges are normalized to `<wall>`): any
    /// rename, reorder, HELP rewording or bucket-layout change must
    /// update `src/testdata/prometheus_golden.txt` deliberately,
    /// because dashboards and scrape configs key on these names.
    #[test]
    fn golden_exposition() {
        let t = LiveTelemetry::new(1);
        for q in 0..2u32 {
            let id = t.begin_query();
            t.observe_disk_read(0, 250_000, 1_000_000, q);
            t.observe_query(&QueryObservation {
                query: id,
                algo: "CRSS",
                k: 5,
                answers: 5,
                nodes: 8,
                batches: 2,
                response_ns: (q as u64 + 1) * 4_000_000,
                disk_queue_ns: 250_000,
                disk_service_ns: 1_000_000,
                cpu_ns: 50_000,
                failed: false,
            });
        }
        let wall = [
            "sqda_uptime_seconds ",
            "sqda_window_qps ",
            "sqda_disk_utilization{",
        ];
        let normalized: String = render(&t, None)
            .lines()
            .map(|l| {
                if wall.iter().any(|p| l.starts_with(p)) {
                    let (head, _) = l.rsplit_once(' ').unwrap();
                    format!("{head} <wall>\n")
                } else {
                    format!("{l}\n")
                }
            })
            .collect();
        let golden = include_str!("testdata/prometheus_golden.txt");
        assert_eq!(normalized, golden, "exposition drifted from the golden");
    }

    #[test]
    fn lint_catches_violations() {
        // No HELP/TYPE, no EOF.
        let errs = lint("orphan_metric 1\n");
        assert!(errs.iter().any(|e| e.contains("no # HELP")));
        assert!(errs.iter().any(|e| e.contains("no # TYPE")));
        assert!(errs.iter().any(|e| e.contains("# EOF")));

        // Non-monotone buckets and missing +Inf/_sum/_count.
        let bad = "\
# HELP h x
# TYPE h histogram
h_bucket{le=\"1\"} 5
h_bucket{le=\"2\"} 3
# EOF";
        let errs = lint(bad);
        assert!(errs.iter().any(|e| e.contains("not monotone")));
        assert!(errs.iter().any(|e| e.contains("+Inf")));
        assert!(errs.iter().any(|e| e.contains("missing _count")));
        assert!(errs.iter().any(|e| e.contains("missing _sum")));

        // _count disagreeing with the +Inf bucket.
        let bad2 = "\
# HELP h x
# TYPE h histogram
h_bucket{le=\"+Inf\"} 4
h_sum 1.0
h_count 9
# EOF";
        let errs = lint(bad2);
        assert!(errs.iter().any(|e| e.contains("!= +Inf bucket")));
    }

    #[test]
    fn quantile_bracket_contains_exact_percentiles() {
        // The live histogram's bracket must contain the exact
        // percentile of the raw samples under the same rank convention.
        let t = LiveTelemetry::new(1);
        let samples: Vec<f64> = (1..=100).map(|i| i as f64 * 0.7).collect();
        for (i, &s) in samples.iter().enumerate() {
            t.begin_query();
            t.observe_query(&QueryObservation {
                query: i as u32,
                algo: "CRSS",
                k: 1,
                answers: 1,
                nodes: 1,
                batches: 1,
                response_ns: (s * 1e6) as u64,
                disk_queue_ns: 0,
                disk_service_ns: 0,
                cpu_ns: 0,
                failed: false,
            });
        }
        let hist = t.response_ms.snapshot();
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        for q in [0.5, 0.95, 0.99] {
            let pos = q * (sorted.len() - 1) as f64;
            let lo = sorted[pos.floor() as usize];
            let hi = sorted[pos.ceil() as usize];
            let exact = lo + (hi - lo) * (pos - pos.floor());
            let (bl, bu) = hist.quantile_bracket(q);
            assert!(
                bl <= exact && exact <= bu,
                "q={q}: exact {exact} outside bracket [{bl}, {bu}]"
            );
        }
    }
}
