//! Chrome `trace_event` (Perfetto-loadable) export of a recorded run.
//!
//! Layout, mirroring the paper's Figure 7 queueing network:
//!
//! * **pid 1 "disk array"** — one thread per disk (`tid = disk index`);
//!   each request is a complete slice (`ph:"X"`) spanning its *service*
//!   interval (queueing delay is the gap before the slice; the breakdown
//!   travels in `args`). A per-disk counter track (`ph:"C"`) plots the
//!   queue depth at every submission.
//! * **pid 2 "i/o bus"** — tid 0, one slice per page transfer.
//! * **pid 3 "cpu"** — one thread per processor, one slice per batch.
//! * **pid 4 "queries"** — one *async span* per query (`ph:"b"`/`"e"`,
//!   `id` = query index) from arrival to completion, so per-query
//!   latency is visible above the component tracks.
//!
//! Timestamps and durations are microseconds (the `trace_event` unit),
//! converted from integer simulated nanoseconds; `displayTimeUnit` is ms.
//!
//! Load the output at <https://ui.perfetto.dev> or `chrome://tracing`.

use crate::event::Event;
use crate::json::ObjWriter;

/// pid of the disk-array process in the exported trace.
pub const PID_DISKS: u64 = 1;
/// pid of the bus process.
pub const PID_BUS: u64 = 2;
/// pid of the CPU process.
pub const PID_CPU: u64 = 3;
/// pid of the per-query async track process.
pub const PID_QUERIES: u64 = 4;

fn us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

fn meta(name: &str, pid: u64, tid: u64, value: &str) -> String {
    let mut args = ObjWriter::new();
    args.field_str("name", value);
    let mut o = ObjWriter::new();
    o.field_str("name", name);
    o.field_str("ph", "M");
    o.field_u64("pid", pid);
    o.field_u64("tid", tid);
    o.field_raw("args", &args.finish());
    o.finish()
}

/// Converts a recorded event stream into a complete Chrome trace JSON
/// document: `{"traceEvents":[...],"displayTimeUnit":"ms"}`.
///
/// `num_disks` and `num_cpus` size the metadata tracks; disks or CPUs
/// that never served a request still appear (an idle track is signal).
pub fn chrome_trace(events: &[(u64, Event)], num_disks: u32, num_cpus: u32) -> String {
    let mut out: Vec<String> = Vec::new();

    // Track metadata.
    out.push(meta("process_name", PID_DISKS, 0, "disk array"));
    for d in 0..num_disks {
        out.push(meta(
            "thread_name",
            PID_DISKS,
            d as u64,
            &format!("disk {d}"),
        ));
    }
    out.push(meta("process_name", PID_BUS, 0, "i/o bus"));
    out.push(meta("thread_name", PID_BUS, 0, "bus"));
    out.push(meta("process_name", PID_CPU, 0, "cpu"));
    for c in 0..num_cpus {
        out.push(meta("thread_name", PID_CPU, c as u64, &format!("cpu {c}")));
    }
    out.push(meta("process_name", PID_QUERIES, 0, "queries"));

    // Derive per-disk failure spans from the fail/recover markers: a
    // complete slice on the disk's own track from failure to recovery,
    // or to the end of the trace for permanent failures.
    let max_ts = events.iter().map(|&(ts, _)| ts).max().unwrap_or(0);
    let failure_slice = |disk: u16, start: u64, end: u64| -> String {
        let mut o = ObjWriter::new();
        o.field_str("name", "FAILED");
        o.field_str("cat", "fault");
        o.field_str("ph", "X");
        o.field_u64("pid", PID_DISKS);
        o.field_u64("tid", disk as u64);
        o.field_f64("ts", us(start));
        o.field_f64("dur", us(end.saturating_sub(start)));
        o.finish()
    };
    let mut open_failures: std::collections::BTreeMap<u16, u64> = std::collections::BTreeMap::new();
    for &(ts, ref ev) in events {
        match *ev {
            Event::DiskFailed { disk } => {
                open_failures.entry(disk).or_insert(ts);
            }
            Event::DiskRecovered { disk } => {
                if let Some(start) = open_failures.remove(&disk) {
                    out.push(failure_slice(disk, start, ts));
                }
            }
            _ => {}
        }
    }
    for (disk, start) in open_failures {
        out.push(failure_slice(disk, start, max_ts.max(start)));
    }

    for &(ts, ref ev) in events {
        match *ev {
            Event::QueryArrive { query } => {
                let mut o = ObjWriter::new();
                o.field_str("name", "query");
                o.field_str("cat", "query");
                o.field_str("ph", "b");
                o.field_u64("id", query as u64);
                o.field_u64("pid", PID_QUERIES);
                o.field_u64("tid", 0);
                o.field_f64("ts", us(ts));
                out.push(o.finish());
            }
            Event::QueryComplete {
                query,
                response_ns,
                nodes,
                batches,
                ..
            } => {
                let mut args = ObjWriter::new();
                args.field_f64("response_ms", response_ns as f64 / 1e6);
                args.field_u64("nodes", nodes);
                args.field_u64("batches", batches as u64);
                let mut o = ObjWriter::new();
                o.field_str("name", "query");
                o.field_str("cat", "query");
                o.field_str("ph", "e");
                o.field_u64("id", query as u64);
                o.field_u64("pid", PID_QUERIES);
                o.field_u64("tid", 0);
                o.field_f64("ts", us(ts));
                o.field_raw("args", &args.finish());
                out.push(o.finish());
            }
            Event::DiskService {
                query,
                disk,
                cylinder,
                level,
                queue_ns,
                seek_ns,
                rotation_ns,
                transfer_ns,
                queue_depth,
            } => {
                let service_ns = seek_ns + rotation_ns + transfer_ns;
                let mut args = ObjWriter::new();
                args.field_u64("query", query as u64);
                args.field_u64("cylinder", cylinder as u64);
                args.field_u64("level", level as u64);
                args.field_f64("queue_ms", queue_ns as f64 / 1e6);
                args.field_f64("seek_ms", seek_ns as f64 / 1e6);
                args.field_f64("rotation_ms", rotation_ns as f64 / 1e6);
                args.field_f64("transfer_ms", transfer_ns as f64 / 1e6);
                let mut o = ObjWriter::new();
                o.field_str("name", "read");
                o.field_str("cat", "disk");
                o.field_str("ph", "X");
                o.field_u64("pid", PID_DISKS);
                o.field_u64("tid", disk as u64);
                o.field_f64("ts", us(ts + queue_ns));
                o.field_f64("dur", us(service_ns));
                o.field_raw("args", &args.finish());
                out.push(o.finish());

                let mut cargs = ObjWriter::new();
                cargs.field_u64("depth", queue_depth as u64);
                let mut c = ObjWriter::new();
                c.field_str("name", &format!("disk {disk} queue"));
                c.field_str("ph", "C");
                c.field_u64("pid", PID_DISKS);
                c.field_u64("tid", disk as u64);
                c.field_f64("ts", us(ts));
                c.field_raw("args", &cargs.finish());
                out.push(c.finish());
            }
            Event::BusTransfer {
                query,
                queue_ns,
                transfer_ns,
            } => {
                let mut args = ObjWriter::new();
                args.field_u64("query", query as u64);
                args.field_f64("queue_ms", queue_ns as f64 / 1e6);
                let mut o = ObjWriter::new();
                o.field_str("name", "page transfer");
                o.field_str("cat", "bus");
                o.field_str("ph", "X");
                o.field_u64("pid", PID_BUS);
                o.field_u64("tid", 0);
                o.field_f64("ts", us(ts + queue_ns));
                o.field_f64("dur", us(transfer_ns));
                o.field_raw("args", &args.finish());
                out.push(o.finish());
            }
            Event::CpuSlice {
                query,
                cpu,
                queue_ns,
                exec_ns,
                instructions,
            } => {
                let mut args = ObjWriter::new();
                args.field_u64("query", query as u64);
                args.field_u64("instructions", instructions);
                args.field_f64("queue_ms", queue_ns as f64 / 1e6);
                let mut o = ObjWriter::new();
                o.field_str(
                    "name",
                    if instructions == 0 {
                        "startup"
                    } else {
                        "batch"
                    },
                );
                o.field_str("cat", "cpu");
                o.field_str("ph", "X");
                o.field_u64("pid", PID_CPU);
                o.field_u64("tid", cpu as u64);
                o.field_f64("ts", us(ts + queue_ns));
                o.field_f64("dur", us(exec_ns));
                o.field_raw("args", &args.finish());
                out.push(o.finish());
            }
            Event::BatchIssued {
                query,
                level,
                level_max,
                size,
            } => {
                let mut args = ObjWriter::new();
                args.field_u64("level", level as u64);
                if level_max != level {
                    args.field_u64("level_max", level_max as u64);
                }
                args.field_u64("size", size as u64);
                let mut o = ObjWriter::new();
                o.field_str("name", "batch issued");
                o.field_str("cat", "query");
                o.field_str("ph", "n");
                o.field_u64("id", query as u64);
                o.field_u64("pid", PID_QUERIES);
                o.field_u64("tid", 0);
                o.field_f64("ts", us(ts));
                o.field_raw("args", &args.finish());
                out.push(o.finish());
            }
            Event::CrssState {
                query,
                d_th_sq,
                stack_runs,
                stack_candidates,
            } => {
                let mut args = ObjWriter::new();
                args.field_f64(
                    "d_th",
                    if d_th_sq.is_finite() {
                        d_th_sq.sqrt()
                    } else {
                        f64::INFINITY
                    },
                );
                args.field_u64("stack_runs", stack_runs as u64);
                args.field_u64("stack_candidates", stack_candidates as u64);
                let mut o = ObjWriter::new();
                o.field_str("name", "crss state");
                o.field_str("cat", "query");
                o.field_str("ph", "n");
                o.field_u64("id", query as u64);
                o.field_u64("pid", PID_QUERIES);
                o.field_u64("tid", 0);
                o.field_f64("ts", us(ts));
                o.field_raw("args", &args.finish());
                out.push(o.finish());
            }
            // Failure spans were derived in the pre-pass above.
            Event::DiskFailed { .. } | Event::DiskRecovered { .. } => {}
            Event::DiskDegraded {
                disk,
                until_ns,
                multiplier,
                extra_ns,
            } => {
                let mut args = ObjWriter::new();
                args.field_f64("multiplier", multiplier);
                args.field_f64("extra_ms", extra_ns as f64 / 1e6);
                let mut o = ObjWriter::new();
                o.field_str("name", "degraded");
                o.field_str("cat", "fault");
                o.field_str("ph", "X");
                o.field_u64("pid", PID_DISKS);
                o.field_u64("tid", disk as u64);
                o.field_f64("ts", us(ts));
                o.field_f64("dur", us(until_ns.saturating_sub(ts)));
                o.field_raw("args", &args.finish());
                out.push(o.finish());
            }
            Event::DegradedRead {
                query,
                disk,
                replica,
            } => {
                let mut args = ObjWriter::new();
                args.field_u64("disk", disk as u64);
                args.field_u64("replica", replica as u64);
                let mut o = ObjWriter::new();
                o.field_str("name", "degraded read");
                o.field_str("cat", "fault");
                o.field_str("ph", "n");
                o.field_u64("id", query as u64);
                o.field_u64("pid", PID_QUERIES);
                o.field_u64("tid", 0);
                o.field_f64("ts", us(ts));
                o.field_raw("args", &args.finish());
                out.push(o.finish());
            }
            Event::ReadRetry {
                query,
                disk,
                attempt,
            } => {
                let mut args = ObjWriter::new();
                args.field_u64("disk", disk as u64);
                args.field_u64("attempt", attempt as u64);
                let mut o = ObjWriter::new();
                o.field_str("name", "read retry");
                o.field_str("cat", "fault");
                o.field_str("ph", "n");
                o.field_u64("id", query as u64);
                o.field_u64("pid", PID_QUERIES);
                o.field_u64("tid", 0);
                o.field_f64("ts", us(ts));
                o.field_raw("args", &args.finish());
                out.push(o.finish());
            }
            Event::QueryAbort {
                query,
                disk,
                attempts,
            } => {
                // Close the async span opened at arrival so aborted
                // queries do not leave dangling spans in the viewer.
                let mut args = ObjWriter::new();
                args.field_str("outcome", "aborted");
                args.field_u64("disk", disk as u64);
                args.field_u64("attempts", attempts as u64);
                let mut o = ObjWriter::new();
                o.field_str("name", "query");
                o.field_str("cat", "query");
                o.field_str("ph", "e");
                o.field_u64("id", query as u64);
                o.field_u64("pid", PID_QUERIES);
                o.field_u64("tid", 0);
                o.field_f64("ts", us(ts));
                o.field_raw("args", &args.finish());
                out.push(o.finish());
            }
        }
    }

    let mut doc = String::from("{\"traceEvents\":[\n");
    for (i, ev) in out.iter().enumerate() {
        if i > 0 {
            doc.push_str(",\n");
        }
        doc.push_str(ev);
    }
    doc.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    doc
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn sample_events() -> Vec<(u64, Event)> {
        vec![
            (0, Event::QueryArrive { query: 0 }),
            (
                10_000,
                Event::DiskService {
                    query: 0,
                    disk: 1,
                    cylinder: 5,
                    level: 0,
                    queue_ns: 2_000,
                    seek_ns: 1_000,
                    rotation_ns: 3_000,
                    transfer_ns: 2_000,
                    queue_depth: 1,
                },
            ),
            (
                18_000,
                Event::BusTransfer {
                    query: 0,
                    queue_ns: 0,
                    transfer_ns: 400,
                },
            ),
            (
                18_400,
                Event::CpuSlice {
                    query: 0,
                    cpu: 0,
                    queue_ns: 0,
                    exec_ns: 100,
                    instructions: 42,
                },
            ),
            (
                20_000,
                Event::QueryComplete {
                    query: 0,
                    response_ns: 20_000,
                    nodes: 1,
                    batches: 1,
                    disk_queue_ns: 2_000,
                    seek_ns: 1_000,
                    rotation_ns: 3_000,
                    transfer_ns: 2_000,
                    bus_queue_ns: 0,
                    bus_ns: 400,
                    cpu_queue_ns: 0,
                    cpu_ns: 100,
                },
            ),
        ]
    }

    #[test]
    fn trace_is_valid_json_with_expected_tracks() {
        let text = chrome_trace(&sample_events(), 2, 1);
        let doc = parse(&text).unwrap();
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // Metadata: disk array process + 2 disk threads + bus(2) +
        // cpu process + 1 cpu thread + queries = 8 metadata records.
        let metas: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("M"))
            .collect();
        assert_eq!(metas.len(), 8);
        // The disk slice starts after its queueing delay.
        let slice = events
            .iter()
            .find(|e| e.get("cat").map(|c| c.as_str()) == Some(Some("disk")))
            .unwrap();
        assert_eq!(slice.get("ph").unwrap().as_str(), Some("X"));
        assert_eq!(slice.get("pid").unwrap().as_u64(), Some(PID_DISKS));
        assert_eq!(slice.get("tid").unwrap().as_u64(), Some(1));
        assert_eq!(slice.get("ts").unwrap().as_f64(), Some(12.0)); // (10k+2k) ns → µs
        assert_eq!(slice.get("dur").unwrap().as_f64(), Some(6.0));
        // Async span: exactly one b/e pair with matching id.
        let b = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("b"))
            .count();
        let e = events
            .iter()
            .filter(|e| e.get("ph").unwrap().as_str() == Some("e"))
            .count();
        assert_eq!((b, e), (1, 1));
        // Queue-depth counter present.
        assert!(events
            .iter()
            .any(|e| e.get("ph").unwrap().as_str() == Some("C")));
    }

    #[test]
    fn failure_spans_appear_on_disk_tracks() {
        let events = vec![
            (0, Event::DiskFailed { disk: 1 }),
            (5_000, Event::DiskRecovered { disk: 1 }),
            (0, Event::DiskFailed { disk: 0 }), // permanent: runs to trace end
            (
                2_000,
                Event::DiskDegraded {
                    disk: 1,
                    until_ns: 4_000,
                    multiplier: 2.0,
                    extra_ns: 0,
                },
            ),
            (
                3_000,
                Event::DegradedRead {
                    query: 0,
                    disk: 0,
                    replica: 1,
                },
            ),
            (
                9_000,
                Event::QueryAbort {
                    query: 0,
                    disk: 0,
                    attempts: 3,
                },
            ),
        ];
        let text = chrome_trace(&events, 2, 1);
        let doc = parse(&text).unwrap();
        let evs = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let failed: Vec<_> = evs
            .iter()
            .filter(|e| e.get("name").map(|n| n.as_str()) == Some(Some("FAILED")))
            .collect();
        assert_eq!(failed.len(), 2);
        // Transient failure: closed at the recovery timestamp.
        let transient = failed
            .iter()
            .find(|e| e.get("tid").unwrap().as_u64() == Some(1))
            .unwrap();
        assert_eq!(transient.get("dur").unwrap().as_f64(), Some(5.0)); // 5000 ns → µs
        // Permanent failure: runs to the last event in the trace.
        let permanent = failed
            .iter()
            .find(|e| e.get("tid").unwrap().as_u64() == Some(0))
            .unwrap();
        assert_eq!(permanent.get("dur").unwrap().as_f64(), Some(9.0));
        // Degraded window is a slice; abort closes the async span.
        assert!(evs
            .iter()
            .any(|e| e.get("name").map(|n| n.as_str()) == Some(Some("degraded"))));
        assert!(evs
            .iter()
            .any(|e| e.get("ph").unwrap().as_str() == Some("e")));
    }
}
