//! Structured per-query EXPLAIN/ANALYZE records.
//!
//! A [`QueryExplain`] is the introspection record of one executed
//! similarity query: what the engine *observed* (per-level node
//! accesses, batch sizes, the lemma-1 threshold trajectory, the
//! per-disk read distribution, cache behaviour and the queue/service
//! time breakdown) next to what the analytical model of the paper
//! *predicted* for it (`expected_knn_accesses` node count and
//! `estimate_response` latency, filled in by the caller from a
//! `TreeProfile` — this crate stays free of the analysis vocabulary),
//! plus the residuals between the two.
//!
//! The record renders as one line of JSON whose scalar comparison keys
//! carry `observed_*` / `predicted_*` / `residual_*` prefixes; the
//! serve `EXPLAIN` verb replies with exactly this line and the
//! slow-query log embeds it verbatim, so the schema is pinned by a
//! golden test below.

use crate::json::{f64_array, u64_array, ObjWriter};

/// What the analytical model predicted for one query. All costs are
/// plain numbers so `sqda-obs` needs no dependency on the analysis
/// crate; callers fill this from `TreeProfile`-derived estimates.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Prediction {
    /// Predicted node accesses (`expected_knn_accesses`).
    pub accesses: f64,
    /// Predicted fetch batches (≈ accesses / disks, floored at the
    /// tree height).
    pub batches: f64,
    /// Predicted per-disk utilization at the assumed arrival rate.
    pub utilization: f64,
    /// Predicted response time, ms. Non-finite when the model says the
    /// system saturates at the assumed arrival rate (renders as
    /// `null`).
    pub response_ms: f64,
}

/// The introspection record of one executed query: observations,
/// predictions and residuals, rendered as one line of JSON.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryExplain {
    /// Global serving id of the query.
    pub query: u32,
    /// Algorithm that ran it (e.g. `CRSS`).
    pub algo: String,
    /// Requested neighbour count.
    pub k: usize,
    /// Answers produced.
    pub answers: usize,
    /// Index nodes fetched (the paper's node-accesses measure).
    pub nodes: u64,
    /// Fetch batches issued.
    pub batches: u32,
    /// Node accesses per tree level, index 0 = the root level,
    /// ascending depth.
    pub level_accesses: Vec<u64>,
    /// Pages per fetch batch, in issue order.
    pub batch_sizes: Vec<u32>,
    /// Lemma-1 pruning threshold (`d_th`, distance units) after each
    /// batch, for algorithms that expose it (CRSS); empty otherwise.
    /// Unbounded thresholds are `INFINITY` (render as `null`).
    pub threshold_trajectory: Vec<f64>,
    /// Physical reads per disk issued for this query.
    pub reads_per_disk: Vec<u64>,
    /// Node lookups served by the decoded-node cache.
    pub cache_hits: u64,
    /// Node lookups that went to the store.
    pub cache_misses: u64,
    /// Pickup-to-completion response time, ms.
    pub response_ms: f64,
    /// Total time requests waited in disk queues, ms.
    pub disk_queue_ms: f64,
    /// Total disk service time, ms.
    pub disk_service_ms: f64,
    /// Total CPU execution time, ms.
    pub cpu_ms: f64,
    /// Arrival rate (queries/s) the prediction assumed.
    pub lambda: f64,
    /// Whether the prediction used device-calibrated service terms.
    pub calibrated: bool,
    /// The analytical prediction, when the caller could compute one.
    pub predicted: Option<Prediction>,
}

impl QueryExplain {
    /// Observed minus predicted node accesses (`None` without a
    /// prediction).
    pub fn residual_accesses(&self) -> Option<f64> {
        self.predicted.map(|p| self.nodes as f64 - p.accesses)
    }

    /// Observed minus predicted response time, ms (`None` without a
    /// prediction or when the model predicted saturation).
    pub fn residual_response_ms(&self) -> Option<f64> {
        self.predicted
            .filter(|p| p.response_ms.is_finite())
            .map(|p| self.response_ms - p.response_ms)
    }

    /// Renders the record as one line of JSON. The `predicted_*` and
    /// `residual_*` keys are always present (`null` without a
    /// prediction) so consumers can key on the schema, not on
    /// optionality.
    pub fn to_json(&self) -> String {
        let mut w = ObjWriter::new();
        w.field_u64("query", self.query as u64);
        w.field_str("algo", &self.algo);
        w.field_u64("k", self.k as u64);
        w.field_u64("answers", self.answers as u64);
        w.field_u64("observed_accesses", self.nodes);
        w.field_u64("observed_batches", self.batches as u64);
        w.field_f64("observed_response_ms", self.response_ms);
        w.field_f64("observed_disk_queue_ms", self.disk_queue_ms);
        w.field_f64("observed_disk_service_ms", self.disk_service_ms);
        w.field_f64("observed_cpu_ms", self.cpu_ms);
        w.field_raw("level_accesses", &u64_array(&self.level_accesses));
        w.field_raw(
            "batch_sizes",
            &u64_array(&self.batch_sizes.iter().map(|&b| b as u64).collect::<Vec<_>>()),
        );
        w.field_raw(
            "threshold_trajectory",
            &f64_array(&self.threshold_trajectory),
        );
        w.field_raw("reads_per_disk", &u64_array(&self.reads_per_disk));
        w.field_u64("cache_hits", self.cache_hits);
        w.field_u64("cache_misses", self.cache_misses);
        w.field_f64("lambda", self.lambda);
        w.field_bool("calibrated", self.calibrated);
        match self.predicted {
            Some(p) => {
                w.field_f64("predicted_accesses", p.accesses);
                w.field_f64("predicted_batches", p.batches);
                w.field_f64("predicted_utilization", p.utilization);
                w.field_f64("predicted_response_ms", p.response_ms);
            }
            None => {
                w.field_raw("predicted_accesses", "null");
                w.field_raw("predicted_batches", "null");
                w.field_raw("predicted_utilization", "null");
                w.field_raw("predicted_response_ms", "null");
            }
        }
        w.field_f64(
            "residual_accesses",
            self.residual_accesses().unwrap_or(f64::NAN),
        );
        w.field_f64(
            "residual_response_ms",
            self.residual_response_ms().unwrap_or(f64::NAN),
        );
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    fn fixture() -> QueryExplain {
        // A fixed 2-disk fixture: the golden below pins the exact JSON
        // schema the serve EXPLAIN verb and the CI smoke probe key on.
        QueryExplain {
            query: 7,
            algo: "CRSS".into(),
            k: 5,
            answers: 5,
            nodes: 9,
            batches: 3,
            level_accesses: vec![1, 2, 6],
            batch_sizes: vec![1, 2, 6],
            threshold_trajectory: vec![f64::INFINITY, 0.25, 0.125],
            reads_per_disk: vec![5, 4],
            cache_hits: 2,
            cache_misses: 7,
            response_ms: 4.5,
            disk_queue_ms: 0.75,
            disk_service_ms: 3.0,
            cpu_ms: 0.25,
            lambda: 5.0,
            calibrated: true,
            predicted: Some(Prediction {
                accesses: 8.5,
                batches: 4.25,
                utilization: 0.375,
                response_ms: 4.0,
            }),
        }
    }

    #[test]
    fn golden_explain_json_schema() {
        let golden = concat!(
            r#"{"query":7,"algo":"CRSS","k":5,"answers":5,"#,
            r#""observed_accesses":9,"observed_batches":3,"#,
            r#""observed_response_ms":4.5,"observed_disk_queue_ms":0.75,"#,
            r#""observed_disk_service_ms":3,"observed_cpu_ms":0.25,"#,
            r#""level_accesses":[1,2,6],"batch_sizes":[1,2,6],"#,
            r#""threshold_trajectory":[null,0.25,0.125],"#,
            r#""reads_per_disk":[5,4],"cache_hits":2,"cache_misses":7,"#,
            r#""lambda":5,"calibrated":true,"#,
            r#""predicted_accesses":8.5,"predicted_batches":4.25,"#,
            r#""predicted_utilization":0.375,"predicted_response_ms":4,"#,
            r#""residual_accesses":0.5,"residual_response_ms":0.5}"#,
        );
        assert_eq!(fixture().to_json(), golden, "EXPLAIN schema drifted");
    }

    #[test]
    fn json_parses_and_residuals_match() {
        let e = fixture();
        let doc = parse(&e.to_json()).unwrap();
        assert_eq!(doc.get("observed_accesses").unwrap().as_u64(), Some(9));
        assert_eq!(doc.get("predicted_accesses").unwrap().as_f64(), Some(8.5));
        assert_eq!(doc.get("residual_accesses").unwrap().as_f64(), Some(0.5));
        assert_eq!(e.residual_accesses(), Some(0.5));
        assert_eq!(e.residual_response_ms(), Some(0.5));
        // Unbounded first threshold renders as null.
        let traj = doc.get("threshold_trajectory").unwrap().as_arr().unwrap();
        assert_eq!(traj[0], crate::json::Value::Null);
    }

    #[test]
    fn unpredicted_record_keeps_schema_with_nulls() {
        let mut e = fixture();
        e.predicted = None;
        let doc = parse(&e.to_json()).unwrap();
        assert_eq!(doc.get("predicted_accesses"), Some(&crate::json::Value::Null));
        assert_eq!(doc.get("residual_accesses"), Some(&crate::json::Value::Null));
        assert_eq!(e.residual_accesses(), None);
        assert_eq!(e.residual_response_ms(), None);
    }

    #[test]
    fn saturated_prediction_has_null_latency_residual() {
        let mut e = fixture();
        e.predicted = Some(Prediction {
            accesses: 8.5,
            batches: 4.25,
            utilization: 1.25,
            response_ms: f64::INFINITY,
        });
        assert_eq!(e.residual_accesses(), Some(0.5));
        assert_eq!(e.residual_response_ms(), None);
        let doc = parse(&e.to_json()).unwrap();
        assert_eq!(
            doc.get("predicted_response_ms"),
            Some(&crate::json::Value::Null)
        );
    }
}
