//! JSONL event-log sink: one JSON object per line, in emission order.
//!
//! Line schema: `{"ts":<ns>,"type":"<kind>", ...fields}` — `ts` is
//! simulated time in integer nanoseconds, fields are the event's scalars
//! with `_ns` duration suffixes preserved. The rendering is canonical
//! (fixed field order, shortest float repr), so a deterministic run
//! produces byte-identical logs — the golden-file tests depend on this.

use crate::event::{Event, Recorder};
use crate::json::ObjWriter;
use std::io::Write;

/// Renders one event as its canonical JSONL line (no trailing newline).
pub fn event_to_json(ts_ns: u64, event: &Event) -> String {
    let mut o = ObjWriter::new();
    o.field_u64("ts", ts_ns);
    o.field_str("type", event.kind());
    match *event {
        Event::QueryArrive { query } => {
            o.field_u64("query", query as u64);
        }
        Event::QueryComplete {
            query,
            response_ns,
            nodes,
            batches,
            disk_queue_ns,
            seek_ns,
            rotation_ns,
            transfer_ns,
            bus_queue_ns,
            bus_ns,
            cpu_queue_ns,
            cpu_ns,
        } => {
            o.field_u64("query", query as u64);
            o.field_u64("response_ns", response_ns);
            o.field_u64("nodes", nodes);
            o.field_u64("batches", batches as u64);
            o.field_u64("disk_queue_ns", disk_queue_ns);
            o.field_u64("seek_ns", seek_ns);
            o.field_u64("rotation_ns", rotation_ns);
            o.field_u64("transfer_ns", transfer_ns);
            o.field_u64("bus_queue_ns", bus_queue_ns);
            o.field_u64("bus_ns", bus_ns);
            o.field_u64("cpu_queue_ns", cpu_queue_ns);
            o.field_u64("cpu_ns", cpu_ns);
        }
        Event::BatchIssued {
            query,
            level,
            level_max,
            size,
        } => {
            o.field_u64("query", query as u64);
            o.field_u64("level", level as u64);
            // Level-uniform batches (the overwhelmingly common case, and
            // the only one the pre-fault schema could express) omit the
            // redundant field, keeping their lines — and the golden
            // traces — byte-identical to the old schema.
            if level_max != level {
                o.field_u64("level_max", level_max as u64);
            }
            o.field_u64("size", size as u64);
        }
        Event::DiskService {
            query,
            disk,
            cylinder,
            level,
            queue_ns,
            seek_ns,
            rotation_ns,
            transfer_ns,
            queue_depth,
        } => {
            o.field_u64("query", query as u64);
            o.field_u64("disk", disk as u64);
            o.field_u64("cylinder", cylinder as u64);
            o.field_u64("level", level as u64);
            o.field_u64("queue_ns", queue_ns);
            o.field_u64("seek_ns", seek_ns);
            o.field_u64("rotation_ns", rotation_ns);
            o.field_u64("transfer_ns", transfer_ns);
            o.field_u64("queue_depth", queue_depth as u64);
        }
        Event::BusTransfer {
            query,
            queue_ns,
            transfer_ns,
        } => {
            o.field_u64("query", query as u64);
            o.field_u64("queue_ns", queue_ns);
            o.field_u64("transfer_ns", transfer_ns);
        }
        Event::CpuSlice {
            query,
            cpu,
            queue_ns,
            exec_ns,
            instructions,
        } => {
            o.field_u64("query", query as u64);
            o.field_u64("cpu", cpu as u64);
            o.field_u64("queue_ns", queue_ns);
            o.field_u64("exec_ns", exec_ns);
            o.field_u64("instructions", instructions);
        }
        Event::CrssState {
            query,
            d_th_sq,
            stack_runs,
            stack_candidates,
        } => {
            o.field_u64("query", query as u64);
            o.field_f64("d_th_sq", d_th_sq);
            o.field_u64("stack_runs", stack_runs as u64);
            o.field_u64("stack_candidates", stack_candidates as u64);
        }
        Event::DiskFailed { disk } => {
            o.field_u64("disk", disk as u64);
        }
        Event::DiskRecovered { disk } => {
            o.field_u64("disk", disk as u64);
        }
        Event::DiskDegraded {
            disk,
            until_ns,
            multiplier,
            extra_ns,
        } => {
            o.field_u64("disk", disk as u64);
            o.field_u64("until_ns", until_ns);
            o.field_f64("multiplier", multiplier);
            o.field_u64("extra_ns", extra_ns);
        }
        Event::DegradedRead {
            query,
            disk,
            replica,
        } => {
            o.field_u64("query", query as u64);
            o.field_u64("disk", disk as u64);
            o.field_u64("replica", replica as u64);
        }
        Event::ReadRetry {
            query,
            disk,
            attempt,
        } => {
            o.field_u64("query", query as u64);
            o.field_u64("disk", disk as u64);
            o.field_u64("attempt", attempt as u64);
        }
        Event::QueryAbort {
            query,
            disk,
            attempts,
        } => {
            o.field_u64("query", query as u64);
            o.field_u64("disk", disk as u64);
            o.field_u64("attempts", attempts as u64);
        }
    }
    o.finish()
}

/// Renders a whole event stream as a JSONL document.
pub fn events_to_jsonl(events: &[(u64, Event)]) -> String {
    let mut out = String::new();
    for (ts, ev) in events {
        out.push_str(&event_to_json(*ts, ev));
        out.push('\n');
    }
    out
}

/// A [`Recorder`] that streams events as JSONL to any writer (a file,
/// a `Vec<u8>`, ...). Each event is rendered and written immediately;
/// buffering policy is the writer's.
pub struct JsonlRecorder<W: Write> {
    writer: W,
    error: Option<std::io::Error>,
}

impl<W: Write> JsonlRecorder<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> Self {
        Self {
            writer,
            error: None,
        }
    }

    /// Flushes and returns the writer; surfaces any deferred I/O error.
    ///
    /// # Errors
    ///
    /// Returns the first write error encountered while recording, or the
    /// flush error.
    pub fn finish(mut self) -> std::io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.writer.flush()?;
        Ok(self.writer)
    }
}

impl<W: Write> Recorder for JsonlRecorder<W> {
    fn record(&mut self, ts_ns: u64, event: Event) {
        if self.error.is_some() {
            return;
        }
        let line = event_to_json(ts_ns, &event);
        if let Err(e) = self
            .writer
            .write_all(line.as_bytes())
            .and_then(|()| self.writer.write_all(b"\n"))
        {
            // Recording must never fail the simulation; the error is
            // surfaced when the caller finishes the sink.
            self.error = Some(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::parse;

    #[test]
    fn lines_are_valid_json_with_discriminator() {
        let events = vec![
            (0, Event::QueryArrive { query: 0 }),
            (
                1_000,
                Event::DiskService {
                    query: 0,
                    disk: 3,
                    cylinder: 77,
                    level: 1,
                    queue_ns: 0,
                    seek_ns: 4_000_000,
                    rotation_ns: 2_000_000,
                    transfer_ns: 2_000_000,
                    queue_depth: 2,
                },
            ),
            (
                2_000,
                Event::CrssState {
                    query: 0,
                    d_th_sq: f64::INFINITY,
                    stack_runs: 1,
                    stack_candidates: 4,
                },
            ),
        ];
        let text = events_to_jsonl(&events);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        let v = parse(lines[1]).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("disk_service"));
        assert_eq!(v.get("disk").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("seek_ns").unwrap().as_u64(), Some(4_000_000));
        // Infinite threshold serializes as null.
        let v2 = parse(lines[2]).unwrap();
        assert_eq!(v2.get("d_th_sq"), Some(&crate::json::Value::Null));
    }

    #[test]
    fn batch_level_max_serialized_only_when_mixed() {
        // Level-uniform: byte-identical to the pre-fault schema.
        let uniform = event_to_json(
            1_000_000,
            &Event::BatchIssued {
                query: 0,
                level: 1,
                level_max: 1,
                size: 3,
            },
        );
        assert_eq!(
            uniform,
            "{\"ts\":1000000,\"type\":\"batch_issued\",\"query\":0,\"level\":1,\"size\":3}"
        );
        // Mixed-level (CRSS candidate-stack pops): range is explicit.
        let mixed = event_to_json(
            1_000_000,
            &Event::BatchIssued {
                query: 0,
                level: 0,
                level_max: 2,
                size: 3,
            },
        );
        let v = parse(&mixed).unwrap();
        assert_eq!(v.get("level").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("level_max").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn fault_events_serialize() {
        let events = vec![
            (5, Event::DiskFailed { disk: 2 }),
            (9, Event::DiskRecovered { disk: 2 }),
            (
                10,
                Event::DiskDegraded {
                    disk: 1,
                    until_ns: 99,
                    multiplier: 2.5,
                    extra_ns: 7,
                },
            ),
            (
                11,
                Event::DegradedRead {
                    query: 3,
                    disk: 0,
                    replica: 2,
                },
            ),
            (
                12,
                Event::ReadRetry {
                    query: 3,
                    disk: 4,
                    attempt: 2,
                },
            ),
            (
                13,
                Event::QueryAbort {
                    query: 3,
                    disk: 4,
                    attempts: 3,
                },
            ),
        ];
        let text = events_to_jsonl(&events);
        let lines: Vec<&str> = text.lines().collect();
        let v = parse(lines[0]).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("disk_failed"));
        assert_eq!(v.get("disk").unwrap().as_u64(), Some(2));
        let v = parse(lines[2]).unwrap();
        assert_eq!(v.get("until_ns").unwrap().as_u64(), Some(99));
        assert_eq!(v.get("multiplier").unwrap().as_f64(), Some(2.5));
        let v = parse(lines[3]).unwrap();
        assert_eq!(v.get("replica").unwrap().as_u64(), Some(2));
        let v = parse(lines[5]).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("query_abort"));
        assert_eq!(v.get("attempts").unwrap().as_u64(), Some(3));
    }

    #[test]
    fn jsonl_recorder_streams_to_writer() {
        let mut rec = JsonlRecorder::new(Vec::<u8>::new());
        rec.record(1, Event::QueryArrive { query: 7 });
        rec.record(
            2,
            Event::BusTransfer {
                query: 7,
                queue_ns: 5,
                transfer_ns: 6,
            },
        );
        let bytes = rec.finish().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 2);
        assert!(text.starts_with("{\"ts\":1,\"type\":\"query_arrive\",\"query\":7}\n"));
    }
}
