//! # sqda-obs — simulation tracing & metrics
//!
//! Observability layer for the disk-array similarity-search simulator:
//! a [`Recorder`] seam the executor emits structured [`Event`]s through,
//! plus sinks and post-run folds:
//!
//! * [`jsonl`] — streaming JSONL event log ([`JsonlRecorder`]);
//! * [`perfetto`] — Chrome `trace_event` export ([`perfetto::chrome_trace`]),
//!   loadable at <https://ui.perfetto.dev>: one track per disk / bus / CPU,
//!   one async span per query;
//! * [`metrics`] — counters, gauges, fixed-bucket histograms and the
//!   [`MetricsSnapshot`] (per-disk time-in-queue and queue-depth
//!   histograms, load imbalance, cache behaviour folded from the store's
//!   `IoStats`);
//! * [`profile`] — per-query [`QueryProfile`]s (nodes per level,
//!   response-time component breakdown, CRSS threshold trajectory).
//!
//! The overhead contract: with [`NullRecorder`] the instrumented
//! executor performs no per-event heap allocation and produces
//! byte-identical simulation results — recording observes, never steers.
//! JSON is written and parsed by the dependency-free [`json`] module.

#![warn(missing_docs)]

pub mod event;
pub mod explain;
pub mod json;
pub mod jsonl;
pub mod live;
pub mod manifest;
pub mod metrics;
pub mod perfetto;
pub mod profile;
pub mod prometheus;
pub mod sink;
pub mod stats;

pub use event::{CollectingRecorder, Event, NullRecorder, QueryId, Recorder};
pub use explain::{Prediction, QueryExplain};
pub use jsonl::{event_to_json, events_to_jsonl, JsonlRecorder};
pub use live::{
    FlightRecorder, LiveCounter, LiveGauge, LiveHistogram, LiveTelemetry, QueryObservation,
    SlowQueryLog, WindowStats,
};
pub use manifest::{discover_git_sha, RunManifest};
pub use metrics::{Counter, DiskMetrics, Gauge, Histogram, MetricsSnapshot};
pub use perfetto::chrome_trace;
pub use profile::{query_profiles, Breakdown, CrssPoint, QueryProfile};
pub use sink::{metrics_document, trace_document, write_observability};
pub use stats::{batch_means, truncate_warmup, MetricSummary, OnlineMoments};
