//! Bounding regions: the geometry access methods bound their subtrees
//! with.
//!
//! The R-tree family uses rectangles; the SS-tree uses spheres. The
//! similarity-search algorithms only need the three distance metrics, so
//! [`Region`] exposes exactly those and the algorithms run unchanged over
//! either access method.

use crate::{Point, Rect};
use serde::{Deserialize, Serialize};

/// A bounding region: an axis-aligned rectangle or a sphere.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Region {
    /// An axis-aligned minimum bounding rectangle.
    Rect(Rect),
    /// A bounding sphere (center + radius), as used by the SS-tree.
    Sphere {
        /// Sphere center.
        center: Point,
        /// Sphere radius (≥ 0).
        radius: f64,
    },
}

impl Region {
    /// Creates a sphere region.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative.
    pub fn sphere(center: Point, radius: f64) -> Self {
        assert!(radius >= 0.0, "radius must be non-negative");
        Region::Sphere { center, radius }
    }

    /// The region's dimensionality.
    pub fn dim(&self) -> usize {
        match self {
            Region::Rect(r) => r.dim(),
            Region::Sphere { center, .. } => center.dim(),
        }
    }

    /// `D_min²`: squared distance from `p` to the nearest point of the
    /// region (0 inside).
    pub fn min_dist_sq(&self, p: &Point) -> f64 {
        match self {
            Region::Rect(r) => r.min_dist_sq(p),
            Region::Sphere { center, radius } => {
                crate::kernel::sphere_min_dist_sq(center.coords(), *radius, p.coords())
            }
        }
    }

    /// `D_mm²`: the squared distance within which an object is
    /// *guaranteed* to lie.
    ///
    /// For a minimal MBR every face touches an object (MINMAXDIST); a
    /// bounding sphere gives no such per-face guarantee — an object could
    /// sit anywhere on the far surface — so the sphere's pessimistic
    /// bound is its `D_max`. CRSS remains correct over spheres, just
    /// with a weaker activation signal.
    pub fn min_max_dist_sq(&self, p: &Point) -> f64 {
        match self {
            Region::Rect(r) => r.min_max_dist_sq(p),
            Region::Sphere { .. } => self.max_dist_sq(p),
        }
    }

    /// `D_max²`: squared distance from `p` to the farthest point of the
    /// region.
    pub fn max_dist_sq(&self, p: &Point) -> f64 {
        match self {
            Region::Rect(r) => r.max_dist_sq(p),
            Region::Sphere { center, radius } => {
                crate::kernel::sphere_max_dist_sq(center.coords(), *radius, p.coords())
            }
        }
    }

    /// The smallest axis-aligned rectangle covering the region (used by
    /// geometric declustering heuristics, which reason in boxes).
    pub fn bounding_rect(&self) -> Rect {
        match self {
            Region::Rect(r) => r.clone(),
            Region::Sphere { center, radius } => {
                Rect::around(center, *radius).expect("sphere bounds are ordered")
            }
        }
    }
}

impl From<Rect> for Region {
    fn from(r: Rect) -> Self {
        Region::Rect(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sphere(center: &[f64], radius: f64) -> Region {
        Region::sphere(Point::new(center.to_vec()), radius)
    }

    #[test]
    fn sphere_distances() {
        let s = sphere(&[0.0, 0.0], 1.0);
        let p = Point::new(vec![3.0, 0.0]);
        assert_eq!(s.min_dist_sq(&p), 4.0); // 3 - 1 = 2
        assert_eq!(s.max_dist_sq(&p), 16.0); // 3 + 1 = 4
        assert_eq!(s.min_max_dist_sq(&p), 16.0); // = Dmax for spheres
                                                 // Inside the sphere.
        let q = Point::new(vec![0.5, 0.0]);
        assert_eq!(s.min_dist_sq(&q), 0.0);
        assert_eq!(s.max_dist_sq(&q), 2.25); // 0.5 + 1 = 1.5
    }

    #[test]
    fn rect_region_delegates() {
        let r = Rect::new(vec![1.0, 1.0], vec![3.0, 2.0]).unwrap();
        let region = Region::from(r.clone());
        let p = Point::new(vec![0.0, 0.0]);
        assert_eq!(region.min_dist_sq(&p), r.min_dist_sq(&p));
        assert_eq!(region.min_max_dist_sq(&p), r.min_max_dist_sq(&p));
        assert_eq!(region.max_dist_sq(&p), r.max_dist_sq(&p));
        assert_eq!(region.dim(), 2);
    }

    #[test]
    fn metric_ordering_for_spheres() {
        let s = sphere(&[2.0, -1.0, 4.0], 2.5);
        for coords in [[0.0, 0.0, 0.0], [2.0, -1.0, 4.0], [10.0, 10.0, -10.0]] {
            let p = Point::new(coords.to_vec());
            assert!(s.min_dist_sq(&p) <= s.min_max_dist_sq(&p));
            assert!(s.min_max_dist_sq(&p) <= s.max_dist_sq(&p));
        }
    }

    #[test]
    fn bounding_rect_of_sphere() {
        let s = sphere(&[1.0, 2.0], 0.5);
        let bb = s.bounding_rect();
        assert_eq!(bb.lo(), &[0.5, 1.5]);
        assert_eq!(bb.hi(), &[1.5, 2.5]);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_radius_rejected() {
        let _ = Region::sphere(Point::new(vec![0.0]), -1.0);
    }
}
