//! Query hyper-spheres.

use crate::{Point, Rect, RectRef};

/// A hyper-sphere, stored as a center point plus a **squared** radius.
///
/// The similarity-search algorithms reason about the *query sphere*: the
/// sphere centered at the query point whose radius is the current upper
/// bound on the distance to the k-th nearest neighbour. An MBR can be
/// pruned exactly when it does not intersect the query sphere, i.e. when
/// `D_min²(P_q, R) > radius²`.
#[derive(Debug, Clone, PartialEq)]
pub struct Sphere {
    center: Point,
    radius_sq: f64,
}

impl Sphere {
    /// Creates a sphere from its center and (non-squared) radius.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative.
    pub fn new(center: Point, radius: f64) -> Self {
        assert!(radius >= 0.0, "sphere radius must be non-negative");
        Self {
            center,
            radius_sq: radius * radius,
        }
    }

    /// Creates a sphere from its center and squared radius.
    ///
    /// # Panics
    ///
    /// Panics if `radius_sq` is negative.
    pub fn from_radius_sq(center: Point, radius_sq: f64) -> Self {
        assert!(radius_sq >= 0.0, "squared radius must be non-negative");
        Self { center, radius_sq }
    }

    /// The center of the sphere.
    #[inline]
    pub fn center(&self) -> &Point {
        &self.center
    }

    /// The squared radius.
    #[inline]
    pub fn radius_sq(&self) -> f64 {
        self.radius_sq
    }

    /// The radius.
    #[inline]
    pub fn radius(&self) -> f64 {
        self.radius_sq.sqrt()
    }

    /// Shrinks the sphere to a new squared radius. Growing is rejected to
    /// catch logic errors in pruning code: query spheres only ever shrink.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `radius_sq` exceeds the current one.
    pub fn shrink_to_sq(&mut self, radius_sq: f64) {
        debug_assert!(
            radius_sq <= self.radius_sq,
            "query spheres only shrink ({radius_sq} > {})",
            self.radius_sq
        );
        self.radius_sq = radius_sq;
    }

    /// Returns `true` if the point lies inside or on the sphere.
    #[inline]
    pub fn contains_point(&self, p: &Point) -> bool {
        self.center.dist_sq(p) <= self.radius_sq
    }

    /// Returns `true` if the MBR intersects the sphere
    /// (`D_min² ≤ radius²`).
    #[inline]
    pub fn intersects_rect(&self, r: &Rect) -> bool {
        r.min_dist_sq(&self.center) <= self.radius_sq
    }

    /// Returns `true` if the MBR is fully enclosed by the sphere
    /// (`D_max² ≤ radius²`).
    #[inline]
    pub fn contains_rect(&self, r: &Rect) -> bool {
        r.max_dist_sq(&self.center) <= self.radius_sq
    }

    /// [`Sphere::contains_point`] over a raw coordinate slice (an entry of
    /// a flat-layout tree node).
    #[inline]
    pub fn contains_coords(&self, c: &[f64]) -> bool {
        self.center.dist_sq_coords(c) <= self.radius_sq
    }

    /// [`Sphere::intersects_rect`] over a borrowed MBR view.
    #[inline]
    pub fn intersects_rect_ref(&self, r: &RectRef<'_>) -> bool {
        r.min_dist_sq(self.center.coords()) <= self.radius_sq
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(lo: &[f64], hi: &[f64]) -> Rect {
        Rect::new(lo.to_vec(), hi.to_vec()).unwrap()
    }

    #[test]
    fn radius_roundtrip() {
        let s = Sphere::new(Point::new(vec![0.0, 0.0]), 3.0);
        assert_eq!(s.radius_sq(), 9.0);
        assert_eq!(s.radius(), 3.0);
    }

    #[test]
    fn contains_point_boundary() {
        let s = Sphere::new(Point::new(vec![0.0, 0.0]), 5.0);
        assert!(s.contains_point(&Point::new(vec![3.0, 4.0]))); // on boundary
        assert!(s.contains_point(&Point::new(vec![0.0, 0.0])));
        assert!(!s.contains_point(&Point::new(vec![3.1, 4.0])));
    }

    #[test]
    fn rect_intersection() {
        let s = Sphere::new(Point::new(vec![0.0, 0.0]), 1.0);
        assert!(s.intersects_rect(&rect(&[0.5, 0.5], &[2.0, 2.0])));
        assert!(!s.intersects_rect(&rect(&[1.0, 1.0], &[2.0, 2.0]))); // corner dist sqrt2 > 1
        assert!(s.intersects_rect(&rect(&[-0.1, -0.1], &[0.1, 0.1])));
    }

    #[test]
    fn rect_containment() {
        let s = Sphere::new(Point::new(vec![0.0, 0.0]), 2.0);
        assert!(s.contains_rect(&rect(&[-1.0, -1.0], &[1.0, 1.0]))); // corner dist sqrt2 < 2
        assert!(!s.contains_rect(&rect(&[0.0, 0.0], &[2.0, 2.0]))); // corner dist 2*sqrt2 > 2
    }

    #[test]
    fn slice_variants_match_owned() {
        let s = Sphere::new(Point::new(vec![0.0, 0.0]), 1.0);
        for (lo, hi) in [
            ([0.5, 0.5], [2.0, 2.0]),
            ([1.0, 1.0], [2.0, 2.0]),
            ([-0.1, -0.1], [0.1, 0.1]),
        ] {
            let r = rect(&lo, &hi);
            assert_eq!(s.intersects_rect_ref(&r.as_ref()), s.intersects_rect(&r));
        }
        for p in [[3.0, 4.0], [0.0, 0.0], [3.1, 4.0]] {
            assert_eq!(
                s.contains_coords(&p),
                s.contains_point(&Point::new(p.to_vec()))
            );
        }
    }

    #[test]
    fn shrink_only() {
        let mut s = Sphere::new(Point::new(vec![0.0]), 4.0);
        s.shrink_to_sq(9.0);
        assert_eq!(s.radius(), 3.0);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn grow_panics_in_debug() {
        let mut s = Sphere::new(Point::new(vec![0.0]), 1.0);
        s.shrink_to_sq(100.0);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_radius_panics() {
        let _ = Sphere::new(Point::new(vec![0.0]), -1.0);
    }
}
