//! n-dimensional geometry primitives for similarity query processing.
//!
//! This crate implements the geometric foundation of the SIGMOD'98 paper
//! *"Similarity Query Processing Using Disk Arrays"* (Papadopoulos &
//! Manolopoulos): points, minimum bounding rectangles (MBRs) and the three
//! point-to-rectangle distance metrics the paper's algorithms are built on:
//!
//! * [`Rect::min_dist_sq`] — `D_min`, the optimistic MINDIST metric,
//! * [`Rect::min_max_dist_sq`] — `D_mm`, the pessimistic MINMAXDIST metric,
//! * [`Rect::max_dist_sq`] — `D_max`, the distance to the farthest point of
//!   the rectangle (used by Lemma 1 to derive the threshold distance).
//!
//! All distances are computed and compared in **squared** form; square roots
//! are taken only at presentation boundaries. Squared distances preserve
//! ordering for non-negative values and avoid `sqrt` in hot loops.
//!
//! # Example
//!
//! ```
//! use sqda_geom::{Point, Rect};
//!
//! let p = Point::new(vec![0.0, 0.0]);
//! let r = Rect::new(vec![1.0, 1.0], vec![3.0, 2.0]).unwrap();
//! assert_eq!(r.min_dist_sq(&p), 2.0);   // closest corner (1,1)
//! assert_eq!(r.max_dist_sq(&p), 13.0);  // farthest corner (3,2)
//! assert!(r.min_max_dist_sq(&p) >= r.min_dist_sq(&p));
//! ```

#![cfg_attr(feature = "simd", feature(portable_simd))]

pub mod kernel;
mod point;
mod rect;
mod rectref;
mod region;
mod sphere;

pub use point::Point;
pub use rect::Rect;
pub use rectref::RectRef;
pub use region::Region;
pub use sphere::Sphere;

/// Errors produced by geometry constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeomError {
    /// The low corner exceeds the high corner in some dimension.
    InvertedCorners {
        /// The offending dimension index.
        dim: usize,
    },
    /// Two operands have different dimensionality.
    DimensionMismatch {
        /// Dimensionality of the left operand.
        left: usize,
        /// Dimensionality of the right operand.
        right: usize,
    },
    /// A coordinate was NaN or infinite.
    NonFiniteCoordinate,
    /// Zero-dimensional geometry is not meaningful.
    ZeroDimensional,
}

impl std::fmt::Display for GeomError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeomError::InvertedCorners { dim } => {
                write!(f, "low corner exceeds high corner in dimension {dim}")
            }
            GeomError::DimensionMismatch { left, right } => {
                write!(f, "dimension mismatch: {left} vs {right}")
            }
            GeomError::NonFiniteCoordinate => write!(f, "coordinate is NaN or infinite"),
            GeomError::ZeroDimensional => write!(f, "zero-dimensional geometry"),
        }
    }
}

impl std::error::Error for GeomError {}

/// Convenience alias for geometry results.
pub type Result<T> = std::result::Result<T, GeomError>;
