//! Minimum bounding rectangles and the three point-to-MBR distance metrics.

use crate::{GeomError, Point, RectRef, Result};
use serde::{Deserialize, Serialize};

/// An n-dimensional axis-aligned minimum bounding rectangle (MBR).
///
/// Internal R\*-tree nodes approximate their subtrees by MBRs; leaf entries
/// store degenerate MBRs for point data. The three distance metrics defined
/// by the paper (Definitions 3–5) are implemented here in squared form:
///
/// * [`Rect::min_dist_sq`] (`D_min`, MINDIST) — the smallest possible
///   distance from the query point to any object inside the MBR. Optimistic
///   bound: no object in the subtree can be closer than this.
/// * [`Rect::min_max_dist_sq`] (`D_mm`, MINMAXDIST) — the smallest distance
///   within which an object is *guaranteed* to exist, assuming the MBR is
///   minimal (every face touches at least one object). Pessimistic bound.
/// * [`Rect::max_dist_sq`] (`D_max`) — the distance to the farthest point of
///   the MBR. If a sphere around the query point has radius ≥ `D_max`, the
///   whole MBR (and thus every object in the subtree) lies inside it; this
///   property underlies the threshold distance of Lemma 1.
///
/// For every point `p` and MBR `r`: `D_min ≤ D_mm ≤ D_max`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Rect {
    lo: Box<[f64]>,
    hi: Box<[f64]>,
}

impl Rect {
    /// Creates an MBR from its low and high corners.
    ///
    /// Returns an error if the corners have mismatched dimensionality, if
    /// `lo[d] > hi[d]` for some dimension, or if either is empty.
    pub fn new(lo: Vec<f64>, hi: Vec<f64>) -> Result<Self> {
        if lo.is_empty() {
            return Err(GeomError::ZeroDimensional);
        }
        if lo.len() != hi.len() {
            return Err(GeomError::DimensionMismatch {
                left: lo.len(),
                right: hi.len(),
            });
        }
        if lo.iter().chain(hi.iter()).any(|c| !c.is_finite()) {
            return Err(GeomError::NonFiniteCoordinate);
        }
        for (dim, (l, h)) in lo.iter().zip(hi.iter()).enumerate() {
            if l > h {
                return Err(GeomError::InvertedCorners { dim });
            }
        }
        Ok(Self {
            lo: lo.into_boxed_slice(),
            hi: hi.into_boxed_slice(),
        })
    }

    /// Creates an MBR from corners already known to be valid (e.g. the
    /// union of existing MBRs, or coordinates decoded from a page that
    /// was validated at decode time). Skips the finiteness/ordering scan
    /// of [`Rect::new`]; only shape invariants are debug-checked.
    pub fn new_unchecked(lo: Vec<f64>, hi: Vec<f64>) -> Self {
        debug_assert!(!lo.is_empty(), "rects must have at least 1 dimension");
        debug_assert_eq!(lo.len(), hi.len(), "corner dimension mismatch");
        Self {
            lo: lo.into_boxed_slice(),
            hi: hi.into_boxed_slice(),
        }
    }

    /// Creates a degenerate (zero-extent) MBR covering a single point.
    pub fn from_point(p: &Point) -> Self {
        Self {
            lo: p.coords().to_vec().into_boxed_slice(),
            hi: p.coords().to_vec().into_boxed_slice(),
        }
    }

    /// Creates the bounding box of the sphere `center ± radius`, building
    /// both corners in one pass directly into their final storage.
    ///
    /// Returns an error if a bound is non-finite (overflowing radius) or
    /// if `radius` is negative (inverted corners).
    pub fn around(center: &Point, radius: f64) -> Result<Self> {
        let n = center.dim();
        let mut lo = Vec::with_capacity(n);
        let mut hi = Vec::with_capacity(n);
        for (dim, c) in center.coords().iter().enumerate() {
            let l = c - radius;
            let h = c + radius;
            if !l.is_finite() || !h.is_finite() {
                return Err(GeomError::NonFiniteCoordinate);
            }
            if l > h {
                return Err(GeomError::InvertedCorners { dim });
            }
            lo.push(l);
            hi.push(h);
        }
        Ok(Self {
            lo: lo.into_boxed_slice(),
            hi: hi.into_boxed_slice(),
        })
    }

    /// A borrowed view of this rectangle; the metric implementations live
    /// on [`RectRef`] and `Rect` delegates, so owned and viewed corners
    /// give bit-identical distances.
    #[inline]
    pub fn as_ref(&self) -> RectRef<'_> {
        RectRef::new(&self.lo, &self.hi)
    }

    /// The dimensionality of the MBR.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Low corner coordinates.
    #[inline]
    pub fn lo(&self) -> &[f64] {
        &self.lo
    }

    /// High corner coordinates.
    #[inline]
    pub fn hi(&self) -> &[f64] {
        &self.hi
    }

    /// The center of the MBR.
    pub fn center(&self) -> Point {
        Point::new(
            self.lo
                .iter()
                .zip(self.hi.iter())
                .map(|(l, h)| (l + h) / 2.0)
                .collect(),
        )
    }

    /// The extent (side length) along dimension `d`.
    #[inline]
    pub fn extent(&self, d: usize) -> f64 {
        self.hi[d] - self.lo[d]
    }

    /// The n-dimensional volume (area in 2-d).
    pub fn area(&self) -> f64 {
        self.lo
            .iter()
            .zip(self.hi.iter())
            .map(|(l, h)| h - l)
            .product()
    }

    /// The margin: the sum of the side lengths over all dimensions.
    ///
    /// The R\*-tree split algorithm selects the split axis by minimizing the
    /// margin sum of candidate distributions.
    pub fn margin(&self) -> f64 {
        self.lo.iter().zip(self.hi.iter()).map(|(l, h)| h - l).sum()
    }

    /// Returns `true` if `self` and `other` intersect (share at least one
    /// point, boundaries included).
    pub fn intersects(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        self.lo
            .iter()
            .zip(self.hi.iter())
            .zip(other.lo.iter().zip(other.hi.iter()))
            .all(|((sl, sh), (ol, oh))| sl <= oh && ol <= sh)
    }

    /// Returns `true` if `self` fully contains `other`.
    pub fn contains_rect(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        self.lo
            .iter()
            .zip(self.hi.iter())
            .zip(other.lo.iter().zip(other.hi.iter()))
            .all(|((sl, sh), (ol, oh))| sl <= ol && oh <= sh)
    }

    /// Returns `true` if the point lies inside the MBR (boundary included).
    pub fn contains_point(&self, p: &Point) -> bool {
        debug_assert_eq!(self.dim(), p.dim());
        self.lo
            .iter()
            .zip(self.hi.iter())
            .zip(p.coords().iter())
            .all(|((l, h), c)| l <= c && c <= h)
    }

    /// [`Rect::contains_point`] over a raw coordinate slice (an entry of
    /// a flat-layout tree node).
    #[inline]
    pub fn contains_coords(&self, c: &[f64]) -> bool {
        debug_assert_eq!(self.dim(), c.len());
        self.as_ref().contains_coords(c)
    }

    /// The volume of the intersection with `other`, 0 if disjoint.
    pub fn intersection_area(&self, other: &Rect) -> f64 {
        debug_assert_eq!(self.dim(), other.dim());
        let mut v = 1.0;
        for d in 0..self.dim() {
            let lo = self.lo[d].max(other.lo[d]);
            let hi = self.hi[d].min(other.hi[d]);
            if lo >= hi {
                return 0.0;
            }
            v *= hi - lo;
        }
        v
    }

    /// The smallest MBR enclosing both `self` and `other`.
    pub fn union(&self, other: &Rect) -> Rect {
        debug_assert_eq!(self.dim(), other.dim());
        Rect {
            lo: self
                .lo
                .iter()
                .zip(other.lo.iter())
                .map(|(a, b)| a.min(*b))
                .collect(),
            hi: self
                .hi
                .iter()
                .zip(other.hi.iter())
                .map(|(a, b)| a.max(*b))
                .collect(),
        }
    }

    /// Grows `self` in place to enclose `other`.
    pub fn union_in_place(&mut self, other: &Rect) {
        debug_assert_eq!(self.dim(), other.dim());
        for d in 0..self.lo.len() {
            if other.lo[d] < self.lo[d] {
                self.lo[d] = other.lo[d];
            }
            if other.hi[d] > self.hi[d] {
                self.hi[d] = other.hi[d];
            }
        }
    }

    /// The increase in volume needed to enclose `other`.
    pub fn enlargement(&self, other: &Rect) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Builds the smallest MBR enclosing all `rects`.
    ///
    /// Returns `None` if `rects` is empty.
    pub fn union_all<'a, I>(rects: I) -> Option<Rect>
    where
        I: IntoIterator<Item = &'a Rect>,
    {
        let mut it = rects.into_iter();
        let first = it.next()?.clone();
        Some(it.fold(first, |mut acc, r| {
            acc.union_in_place(r);
            acc
        }))
    }

    /// `D_min²` (MINDIST, Definition 3): squared distance from `p` to the
    /// closest point of the MBR. Zero if `p` lies inside the MBR.
    #[inline]
    pub fn min_dist_sq(&self, p: &Point) -> f64 {
        debug_assert_eq!(self.dim(), p.dim());
        self.as_ref().min_dist_sq(p.coords())
    }

    /// `D_mm²` (MINMAXDIST, Definition 4): the squared distance within which
    /// at least one object of a *minimal* MBR is guaranteed to lie.
    ///
    /// For each dimension `k`, consider the nearer face of the MBR along `k`
    /// and the farther face along every other dimension; the metric is the
    /// minimum over `k` of the distance to that face-corner combination.
    pub fn min_max_dist_sq(&self, p: &Point) -> f64 {
        debug_assert_eq!(self.dim(), p.dim());
        self.as_ref().min_max_dist_sq(p.coords())
    }

    /// `D_max²` (Definition 5): squared distance from `p` to the farthest
    /// point of the MBR (always a vertex).
    #[inline]
    pub fn max_dist_sq(&self, p: &Point) -> f64 {
        debug_assert_eq!(self.dim(), p.dim());
        self.as_ref().max_dist_sq(p.coords())
    }
}

impl std::fmt::Display for Rect {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[")?;
        for d in 0..self.dim() {
            if d > 0 {
                write!(f, " x ")?;
            }
            write!(f, "{}..{}", self.lo[d], self.hi[d])?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(lo: &[f64], hi: &[f64]) -> Rect {
        Rect::new(lo.to_vec(), hi.to_vec()).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(Rect::new(vec![0.0], vec![1.0]).is_ok());
        assert_eq!(
            Rect::new(vec![2.0], vec![1.0]),
            Err(GeomError::InvertedCorners { dim: 0 })
        );
        assert_eq!(
            Rect::new(vec![0.0], vec![1.0, 2.0]),
            Err(GeomError::DimensionMismatch { left: 1, right: 2 })
        );
        assert_eq!(Rect::new(vec![], vec![]), Err(GeomError::ZeroDimensional));
        assert_eq!(
            Rect::new(vec![f64::NAN], vec![1.0]),
            Err(GeomError::NonFiniteCoordinate)
        );
    }

    #[test]
    fn around_builds_sphere_bounds() {
        let c = Point::new(vec![1.0, -2.0, 0.5]);
        let r = Rect::around(&c, 1.5).unwrap();
        assert_eq!(r.lo(), &[-0.5, -3.5, -1.0]);
        assert_eq!(r.hi(), &[2.5, -0.5, 2.0]);
        // Zero radius degenerates to the center point.
        let z = Rect::around(&c, 0.0).unwrap();
        assert_eq!(z, Rect::from_point(&c));
    }

    #[test]
    fn around_rejects_bad_radius() {
        let c = Point::new(vec![0.0, 0.0]);
        assert_eq!(
            Rect::around(&c, -1.0),
            Err(GeomError::InvertedCorners { dim: 0 })
        );
        assert_eq!(
            Rect::around(&c, f64::INFINITY),
            Err(GeomError::NonFiniteCoordinate)
        );
        assert_eq!(
            Rect::around(&c, f64::NAN),
            Err(GeomError::NonFiniteCoordinate)
        );
    }

    #[test]
    fn degenerate_rect_is_valid() {
        let r = rect(&[1.0, 2.0], &[1.0, 2.0]);
        assert_eq!(r.area(), 0.0);
        assert_eq!(r.margin(), 0.0);
        assert!(r.contains_point(&Point::new(vec![1.0, 2.0])));
    }

    #[test]
    fn area_and_margin() {
        let r = rect(&[0.0, 0.0, 0.0], &[2.0, 3.0, 4.0]);
        assert_eq!(r.area(), 24.0);
        assert_eq!(r.margin(), 9.0);
        assert_eq!(r.extent(1), 3.0);
    }

    #[test]
    fn intersection_tests() {
        let a = rect(&[0.0, 0.0], &[2.0, 2.0]);
        let b = rect(&[1.0, 1.0], &[3.0, 3.0]);
        let c = rect(&[5.0, 5.0], &[6.0, 6.0]);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        // Touching boundaries intersect.
        let d = rect(&[2.0, 0.0], &[4.0, 2.0]);
        assert!(a.intersects(&d));
        assert_eq!(a.intersection_area(&b), 1.0);
        assert_eq!(a.intersection_area(&c), 0.0);
        assert_eq!(a.intersection_area(&d), 0.0); // touching has zero area
    }

    #[test]
    fn containment() {
        let outer = rect(&[0.0, 0.0], &[10.0, 10.0]);
        let inner = rect(&[2.0, 2.0], &[3.0, 3.0]);
        assert!(outer.contains_rect(&inner));
        assert!(!inner.contains_rect(&outer));
        assert!(outer.contains_rect(&outer));
        assert!(outer.contains_point(&Point::new(vec![0.0, 10.0])));
        assert!(!outer.contains_point(&Point::new(vec![-0.1, 5.0])));
    }

    #[test]
    fn union_and_enlargement() {
        let a = rect(&[0.0, 0.0], &[1.0, 1.0]);
        let b = rect(&[2.0, 2.0], &[3.0, 3.0]);
        let u = a.union(&b);
        assert_eq!(u.lo(), &[0.0, 0.0]);
        assert_eq!(u.hi(), &[3.0, 3.0]);
        assert_eq!(a.enlargement(&b), 9.0 - 1.0);
        let mut c = a.clone();
        c.union_in_place(&b);
        assert_eq!(c, u);
    }

    #[test]
    fn union_all_of_rects() {
        let rs = [
            rect(&[0.0], &[1.0]),
            rect(&[-5.0], &[-4.0]),
            rect(&[3.0], &[7.0]),
        ];
        let u = Rect::union_all(rs.iter()).unwrap();
        assert_eq!(u.lo(), &[-5.0]);
        assert_eq!(u.hi(), &[7.0]);
        assert!(Rect::union_all(std::iter::empty()).is_none());
    }

    #[test]
    fn min_dist_inside_is_zero() {
        let r = rect(&[0.0, 0.0], &[4.0, 4.0]);
        assert_eq!(r.min_dist_sq(&Point::new(vec![2.0, 2.0])), 0.0);
        assert_eq!(r.min_dist_sq(&Point::new(vec![0.0, 0.0])), 0.0);
    }

    #[test]
    fn min_dist_outside() {
        let r = rect(&[1.0, 1.0], &[3.0, 2.0]);
        let p = Point::new(vec![0.0, 0.0]);
        assert_eq!(r.min_dist_sq(&p), 2.0); // to corner (1,1)
        let q = Point::new(vec![2.0, 5.0]);
        assert_eq!(r.min_dist_sq(&q), 9.0); // to face y=2
    }

    #[test]
    fn max_dist_farthest_vertex() {
        let r = rect(&[1.0, 1.0], &[3.0, 2.0]);
        let p = Point::new(vec![0.0, 0.0]);
        assert_eq!(r.max_dist_sq(&p), 9.0 + 4.0); // corner (3,2)
                                                  // Point at center: farthest vertex is any corner.
        let c = Point::new(vec![2.0, 1.5]);
        assert_eq!(r.max_dist_sq(&c), 1.0 + 0.25);
    }

    #[test]
    fn min_max_dist_matches_hand_computation() {
        // Unit square [0,1]^2, query at origin.
        // Along dim 0: nearer face x=0 (dist 0), farther face y=1 (dist 1)
        //   => 0 + 1 = 1.
        // Along dim 1 symmetric => 1. MINMAXDIST² = 1.
        let r = rect(&[0.0, 0.0], &[1.0, 1.0]);
        let p = Point::new(vec![0.0, 0.0]);
        assert_eq!(r.min_max_dist_sq(&p), 1.0);
    }

    #[test]
    fn min_max_dist_query_inside() {
        // Query at the exact center of the unit square: nearer face along
        // the chosen axis is at distance 0.5 (midpoint tie -> lo), farther
        // faces along others at 0.5. MINMAXDIST² = 0.25 + 0.25 = 0.5.
        let r = rect(&[0.0, 0.0], &[1.0, 1.0]);
        let p = Point::new(vec![0.5, 0.5]);
        assert!((r.min_max_dist_sq(&p) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn metric_ordering_on_fixture() {
        let r = rect(&[1.0, 1.0], &[4.0, 3.0]);
        for coords in [
            vec![0.0, 0.0],
            vec![2.0, 2.0],
            vec![10.0, -3.0],
            vec![1.0, 1.0],
            vec![2.5, 0.0],
        ] {
            let p = Point::new(coords);
            let dmin = r.min_dist_sq(&p);
            let dmm = r.min_max_dist_sq(&p);
            let dmax = r.max_dist_sq(&p);
            assert!(dmin <= dmm + 1e-12, "Dmin {dmin} > Dmm {dmm}");
            assert!(dmm <= dmax + 1e-12, "Dmm {dmm} > Dmax {dmax}");
        }
    }

    #[test]
    fn center_is_midpoint() {
        let r = rect(&[0.0, 2.0], &[4.0, 6.0]);
        assert_eq!(r.center(), Point::new(vec![2.0, 4.0]));
    }

    #[test]
    fn from_point_roundtrip() {
        let p = Point::new(vec![3.0, -1.0]);
        let r = Rect::from_point(&p);
        assert_eq!(r.lo(), p.coords());
        assert_eq!(r.hi(), p.coords());
        assert_eq!(r.min_dist_sq(&p), 0.0);
        assert_eq!(r.max_dist_sq(&p), 0.0);
    }

    #[test]
    fn display_formats() {
        let r = rect(&[0.0, 1.0], &[2.0, 3.0]);
        assert_eq!(r.to_string(), "[0..2 x 1..3]");
    }
}
