//! A borrowed MBR view over flat coordinate storage.
//!
//! Decoded R\*-tree nodes keep all entry coordinates in one contiguous
//! buffer; [`RectRef`] lets the distance metrics and overlap predicates
//! run directly on those slices without materialising a boxed [`Rect`]
//! per entry. [`Rect`] delegates its metric implementations here, so an
//! owned rectangle and a view over the same corners produce bit-identical
//! results — the determinism of the experiment pipeline depends on that.

use crate::{Point, Rect};

/// A borrowed axis-aligned rectangle: low and high corner slices.
///
/// The slices must have equal, non-zero length; `lo[d] <= hi[d]` is the
/// caller's invariant (views are taken over already-validated rectangles,
/// e.g. decoded nodes).
#[derive(Debug, Clone, Copy)]
pub struct RectRef<'a> {
    lo: &'a [f64],
    hi: &'a [f64],
}

impl<'a> RectRef<'a> {
    /// Creates a view from corner slices.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the slices differ in length or are empty.
    #[inline]
    pub fn new(lo: &'a [f64], hi: &'a [f64]) -> Self {
        debug_assert_eq!(lo.len(), hi.len(), "corner slices must match");
        debug_assert!(!lo.is_empty(), "rectangles need at least 1 dimension");
        Self { lo, hi }
    }

    /// The dimensionality of the rectangle.
    #[inline]
    pub fn dim(&self) -> usize {
        self.lo.len()
    }

    /// Low corner coordinates.
    #[inline]
    pub fn lo(&self) -> &'a [f64] {
        self.lo
    }

    /// High corner coordinates.
    #[inline]
    pub fn hi(&self) -> &'a [f64] {
        self.hi
    }

    /// Materialises an owned [`Rect`] with the same corners.
    ///
    /// # Panics
    ///
    /// Panics if the viewed corners do not form a valid rectangle — views
    /// are only ever taken over validated storage, so that is a bug.
    pub fn to_rect(&self) -> Rect {
        Rect::new(self.lo.to_vec(), self.hi.to_vec()).expect("RectRef views a valid rectangle")
    }

    /// The center of the rectangle.
    pub fn center(&self) -> Point {
        Point::new(
            self.lo
                .iter()
                .zip(self.hi.iter())
                .map(|(l, h)| (l + h) / 2.0)
                .collect(),
        )
    }

    /// Returns `true` if the point (given as a coordinate slice) lies
    /// inside the rectangle, boundary included.
    #[inline]
    pub fn contains_coords(&self, c: &[f64]) -> bool {
        debug_assert_eq!(self.dim(), c.len());
        self.lo
            .iter()
            .zip(self.hi.iter())
            .zip(c.iter())
            .all(|((l, h), c)| l <= c && c <= h)
    }

    /// Returns `true` if this rectangle intersects `other` (boundaries
    /// included).
    #[inline]
    pub fn intersects(&self, other: &Rect) -> bool {
        debug_assert_eq!(self.dim(), other.dim());
        self.lo
            .iter()
            .zip(self.hi.iter())
            .zip(other.lo().iter().zip(other.hi().iter()))
            .all(|((sl, sh), (ol, oh))| sl <= oh && ol <= sh)
    }

    /// `D_min²` (MINDIST): squared distance from the point `q` (coordinate
    /// slice) to the closest point of the rectangle. Delegates to the
    /// shared [`crate::kernel`] so the scalar and batched paths cannot
    /// drift.
    #[inline]
    pub fn min_dist_sq(&self, q: &[f64]) -> f64 {
        debug_assert_eq!(self.dim(), q.len());
        crate::kernel::min_dist_sq(self.lo, self.hi, q)
    }

    /// `D_mm²` (MINMAXDIST): the squared distance within which at least
    /// one object of a *minimal* MBR is guaranteed to lie. Delegates to
    /// the shared [`crate::kernel`].
    pub fn min_max_dist_sq(&self, q: &[f64]) -> f64 {
        debug_assert_eq!(self.dim(), q.len());
        crate::kernel::min_max_dist_sq(self.lo, self.hi, q)
    }

    /// `D_max²`: squared distance from `q` to the farthest point of the
    /// rectangle (always a vertex). Delegates to the shared
    /// [`crate::kernel`].
    #[inline]
    pub fn max_dist_sq(&self, q: &[f64]) -> f64 {
        debug_assert_eq!(self.dim(), q.len());
        crate::kernel::max_dist_sq(self.lo, self.hi, q)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rect(lo: &[f64], hi: &[f64]) -> Rect {
        Rect::new(lo.to_vec(), hi.to_vec()).unwrap()
    }

    #[test]
    fn view_matches_owned_metrics_bitwise() {
        let r = rect(&[1.0, 1.0, -2.5], &[4.0, 3.0, 0.5]);
        let v = r.as_ref();
        for coords in [
            vec![0.0, 0.0, 0.0],
            vec![2.0, 2.0, -1.0],
            vec![10.0, -3.0, 7.25],
            vec![1.0, 1.0, -2.5],
            vec![2.5, 0.0, 0.5],
        ] {
            let p = Point::new(coords.clone());
            assert_eq!(
                v.min_dist_sq(&coords).to_bits(),
                r.min_dist_sq(&p).to_bits()
            );
            assert_eq!(
                v.min_max_dist_sq(&coords).to_bits(),
                r.min_max_dist_sq(&p).to_bits()
            );
            assert_eq!(
                v.max_dist_sq(&coords).to_bits(),
                r.max_dist_sq(&p).to_bits()
            );
            assert_eq!(v.contains_coords(&coords), r.contains_point(&p));
        }
    }

    #[test]
    fn view_accessors_and_roundtrip() {
        let r = rect(&[0.0, 2.0], &[4.0, 6.0]);
        let v = r.as_ref();
        assert_eq!(v.dim(), 2);
        assert_eq!(v.lo(), r.lo());
        assert_eq!(v.hi(), r.hi());
        assert_eq!(v.center(), r.center());
        assert_eq!(v.to_rect(), r);
    }

    #[test]
    fn view_intersects_matches_owned() {
        let a = rect(&[0.0, 0.0], &[2.0, 2.0]);
        let b = rect(&[1.0, 1.0], &[3.0, 3.0]);
        let c = rect(&[5.0, 5.0], &[6.0, 6.0]);
        let d = rect(&[2.0, 0.0], &[4.0, 2.0]);
        for other in [&b, &c, &d] {
            assert_eq!(a.as_ref().intersects(other), a.intersects(other));
        }
    }

    #[test]
    fn minmax_two_pass_equals_buffered_reference() {
        // Reference implementation with explicit buffers (the original
        // formulation) — the two-pass version must agree bit for bit.
        let buffered = |r: &Rect, q: &[f64]| -> f64 {
            let n = r.dim();
            let mut near_sq = vec![0.0; n];
            let mut far_sq = vec![0.0; n];
            let mut total_far = 0.0;
            for d in 0..n {
                let c = q[d];
                let mid = (r.lo()[d] + r.hi()[d]) / 2.0;
                let rm = if c <= mid { r.lo()[d] } else { r.hi()[d] };
                let r_m = if c >= mid { r.lo()[d] } else { r.hi()[d] };
                near_sq[d] = (c - rm) * (c - rm);
                far_sq[d] = (c - r_m) * (c - r_m);
                total_far += far_sq[d];
            }
            let mut best = f64::INFINITY;
            for d in 0..n {
                let candidate = total_far - far_sq[d] + near_sq[d];
                if candidate < best {
                    best = candidate;
                }
            }
            best
        };
        let r = rect(&[0.25, -1.0, 3.0, 0.0], &[0.75, 2.0, 9.0, 0.125]);
        for q in [
            vec![0.0, 0.0, 0.0, 0.0],
            vec![0.5, 0.5, 6.0, 0.1],
            vec![-3.0, 7.0, 10.0, -0.5],
        ] {
            assert_eq!(
                r.as_ref().min_max_dist_sq(&q).to_bits(),
                buffered(&r, &q).to_bits()
            );
        }
    }
}
