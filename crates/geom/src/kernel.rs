//! Shared scalar + batched distance kernels.
//!
//! Every distance metric in the crate bottoms out here, so the scalar
//! API ([`Point::dist_sq`], [`RectRef::min_dist_sq`], sphere metrics on
//! [`crate::Region`]) and the batched node-at-a-time kernels cannot
//! drift apart.
//!
//! # Bit-exactness contract
//!
//! The batched kernels vectorize **across entries**, never within one:
//! each entry keeps its own accumulator and its per-dimension
//! accumulation order is exactly the scalar loop's (`acc = 0.0; for d
//! { acc += t*t }`). IEEE-754 addition is not associative, so this is
//! the only layout where `batch == scalar` holds bit for bit — the
//! experiment pipeline's pinned answers and `IoStats` depend on it.
//! Entries are processed in chunks of [`LANES`]; the tail that does not
//! fill a chunk runs through the scalar kernel, which is the same
//! arithmetic.
//!
//! # Scratch-buffer ownership
//!
//! Batched kernels write into a caller-provided `&mut Vec<f64>`
//! (cleared and resized to the entry count). Callers own and reuse the
//! buffers across nodes/queries — the hot path allocates only when a
//! node is wider than anything seen before.
//!
//! With the off-by-default `simd` feature (nightly only) the chunk
//! bodies of the point and MINDIST kernels use `std::simd` lanes; each
//! SIMD lane is one entry's accumulator, so results stay bit-identical.

/// Entries per batch chunk. Eight `f64`s fill one AVX-512 register or
/// two AVX2 registers; the chunked loops below autovectorize well at
/// this width and the remainder cost is negligible for real node fans.
pub const LANES: usize = 8;

#[cfg(feature = "simd")]
use std::simd::{f64x8, num::SimdFloat};

// ---------------------------------------------------------------------
// Scalar slice kernels: the single source of truth for the arithmetic.
// ---------------------------------------------------------------------

/// Squared Euclidean distance between two coordinate slices.
///
/// Accumulates `(a[d]-b[d])²` in dimension order from `0.0` — the same
/// sequence of additions as `iter().map(..).sum()`, so the result is
/// bit-identical to the historical iterator formulation.
#[inline]
pub fn dist_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "dimension mismatch");
    let mut acc = 0.0;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// `D_min²` (MINDIST): squared distance from point `q` to the closest
/// point of the rectangle `[lo, hi]`.
#[inline]
pub fn min_dist_sq(lo: &[f64], hi: &[f64], q: &[f64]) -> f64 {
    debug_assert_eq!(lo.len(), q.len(), "dimension mismatch");
    debug_assert_eq!(hi.len(), q.len(), "dimension mismatch");
    let mut acc = 0.0;
    for ((l, h), c) in lo.iter().zip(hi.iter()).zip(q.iter()) {
        let d = if c < l {
            l - c
        } else if c > h {
            c - h
        } else {
            0.0
        };
        acc += d * d;
    }
    acc
}

/// Per-dimension contribution pair for MINMAXDIST: squared distance to
/// the *near* face and to the *far* face along dimension `d`.
#[inline]
fn face_sq(lo: f64, hi: f64, c: f64) -> (f64, f64) {
    let mid = (lo + hi) / 2.0;
    let rm = if c <= mid { lo } else { hi };
    let r_m = if c >= mid { lo } else { hi };
    ((c - rm) * (c - rm), (c - r_m) * (c - r_m))
}

/// `D_mm²` (MINMAXDIST): the squared distance within which at least one
/// object of a *minimal* MBR is guaranteed to lie.
///
/// Two passes over the dimensions, no allocation; bit-identical to the
/// buffered formulation `total_far - far_sq[d] + near_sq[d]`.
pub fn min_max_dist_sq(lo: &[f64], hi: &[f64], q: &[f64]) -> f64 {
    debug_assert_eq!(lo.len(), q.len(), "dimension mismatch");
    debug_assert_eq!(hi.len(), q.len(), "dimension mismatch");
    let n = q.len();
    let mut total_far = 0.0;
    for d in 0..n {
        total_far += face_sq(lo[d], hi[d], q[d]).1;
    }
    let mut best = f64::INFINITY;
    for d in 0..n {
        let (near_sq, far_sq) = face_sq(lo[d], hi[d], q[d]);
        let candidate = total_far - far_sq + near_sq;
        if candidate < best {
            best = candidate;
        }
    }
    best
}

/// `D_max²`: squared distance from `q` to the farthest point of the
/// rectangle (always a vertex).
#[inline]
pub fn max_dist_sq(lo: &[f64], hi: &[f64], q: &[f64]) -> f64 {
    debug_assert_eq!(lo.len(), q.len(), "dimension mismatch");
    debug_assert_eq!(hi.len(), q.len(), "dimension mismatch");
    let mut acc = 0.0;
    for ((l, h), c) in lo.iter().zip(hi.iter()).zip(q.iter()) {
        let d = (c - l).abs().max((c - h).abs());
        acc += d * d;
    }
    acc
}

/// `D_min²` from `q` to a sphere (0 inside).
#[inline]
pub fn sphere_min_dist_sq(center: &[f64], radius: f64, q: &[f64]) -> f64 {
    let d = dist_sq(center, q).sqrt() - radius;
    if d <= 0.0 {
        0.0
    } else {
        d * d
    }
}

/// `D_max²` from `q` to a sphere. A bounding sphere gives no per-face
/// guarantee, so this is also its MINMAXDIST.
#[inline]
pub fn sphere_max_dist_sq(center: &[f64], radius: f64, q: &[f64]) -> f64 {
    let d = dist_sq(center, q).sqrt() + radius;
    d * d
}

// ---------------------------------------------------------------------
// Batched kernels: all entries of a node in one call.
// ---------------------------------------------------------------------

#[inline]
fn prep_out(out: &mut Vec<f64>, n: usize) {
    out.clear();
    out.resize(n, 0.0);
}

/// Entry count of a flat buffer with the given per-entry stride.
#[inline]
fn entry_count(buf: &[f64], stride: usize) -> usize {
    if stride == 0 {
        return 0;
    }
    debug_assert_eq!(
        buf.len() % stride,
        0,
        "buffer is not a whole number of entries"
    );
    buf.len() / stride
}

/// Squared point-to-point distances from `q` to every entry of a flat
/// point buffer (`entries × dim`, stride `dim`), written into `out`.
pub fn batch_dist_sq(q: &[f64], points: &[f64], out: &mut Vec<f64>) {
    let dim = q.len();
    let n = entry_count(points, dim);
    prep_out(out, n);
    let mut i = 0;
    while i + LANES <= n {
        batch_dist_sq_chunk(q, &points[i * dim..], dim, &mut out[i..i + LANES]);
        i += LANES;
    }
    while i < n {
        out[i] = dist_sq(&points[i * dim..(i + 1) * dim], q);
        i += 1;
    }
}

#[cfg(not(feature = "simd"))]
#[inline]
fn batch_dist_sq_chunk(q: &[f64], points: &[f64], dim: usize, out: &mut [f64]) {
    let mut acc = [0.0f64; LANES];
    for (d, &c) in q.iter().enumerate().take(dim) {
        for (lane, a) in acc.iter_mut().enumerate() {
            let t = points[lane * dim + d] - c;
            *a += t * t;
        }
    }
    out.copy_from_slice(&acc);
}

#[cfg(feature = "simd")]
#[inline]
fn batch_dist_sq_chunk(q: &[f64], points: &[f64], dim: usize, out: &mut [f64]) {
    let mut acc = f64x8::splat(0.0);
    let mut lane_buf = [0.0f64; LANES];
    for (d, &c) in q.iter().enumerate().take(dim) {
        for (lane, slot) in lane_buf.iter_mut().enumerate() {
            *slot = points[lane * dim + d];
        }
        let t = f64x8::from_array(lane_buf) - f64x8::splat(c);
        acc += t * t;
    }
    out.copy_from_slice(&acc.to_array());
}

/// MINDIST² from `q` to every rectangle of a flat rect buffer
/// (`entries × 2·dim`, each entry `lo[0..dim]` then `hi[0..dim]`).
pub fn batch_min_dist_sq(q: &[f64], rects: &[f64], out: &mut Vec<f64>) {
    let dim = q.len();
    let stride = 2 * dim;
    let n = entry_count(rects, stride);
    prep_out(out, n);
    let mut i = 0;
    while i + LANES <= n {
        batch_min_dist_sq_chunk(q, &rects[i * stride..], dim, &mut out[i..i + LANES]);
        i += LANES;
    }
    while i < n {
        let base = i * stride;
        out[i] = min_dist_sq(
            &rects[base..base + dim],
            &rects[base + dim..base + stride],
            q,
        );
        i += 1;
    }
}

#[cfg(not(feature = "simd"))]
#[inline]
fn batch_min_dist_sq_chunk(q: &[f64], rects: &[f64], dim: usize, out: &mut [f64]) {
    let stride = 2 * dim;
    let mut acc = [0.0f64; LANES];
    for (d, &c) in q.iter().enumerate().take(dim) {
        for (lane, a) in acc.iter_mut().enumerate() {
            let base = lane * stride;
            let l = rects[base + d];
            let h = rects[base + dim + d];
            let t = if c < l {
                l - c
            } else if c > h {
                c - h
            } else {
                0.0
            };
            *a += t * t;
        }
    }
    out.copy_from_slice(&acc);
}

#[cfg(feature = "simd")]
#[inline]
fn batch_min_dist_sq_chunk(q: &[f64], rects: &[f64], dim: usize, out: &mut [f64]) {
    let stride = 2 * dim;
    let mut acc = f64x8::splat(0.0);
    let mut lo_buf = [0.0f64; LANES];
    let mut hi_buf = [0.0f64; LANES];
    for (d, &c) in q.iter().enumerate().take(dim) {
        for lane in 0..LANES {
            let base = lane * stride;
            lo_buf[lane] = rects[base + d];
            hi_buf[lane] = rects[base + dim + d];
        }
        let lo = f64x8::from_array(lo_buf);
        let hi = f64x8::from_array(hi_buf);
        let c = f64x8::splat(c);
        // below = max(lo-c, 0), above = max(c-hi, 0); exactly one is
        // non-zero (or both zero inside), matching the scalar branches.
        // No `mul_add`: fusing would round once instead of twice and
        // change bits relative to the scalar `t*t` product.
        let t = (lo - c).simd_max(f64x8::splat(0.0)) + (c - hi).simd_max(f64x8::splat(0.0));
        acc += t * t;
    }
    out.copy_from_slice(&acc.to_array());
}

/// MINMAXDIST² from `q` to every rectangle of a flat rect buffer.
pub fn batch_min_max_dist_sq(q: &[f64], rects: &[f64], out: &mut Vec<f64>) {
    let dim = q.len();
    let stride = 2 * dim;
    let n = entry_count(rects, stride);
    prep_out(out, n);
    let mut i = 0;
    while i + LANES <= n {
        let chunk = &rects[i * stride..];
        let mut total_far = [0.0f64; LANES];
        for (d, &c) in q.iter().enumerate().take(dim) {
            for (lane, tf) in total_far.iter_mut().enumerate() {
                let base = lane * stride;
                *tf += face_sq(chunk[base + d], chunk[base + dim + d], c).1;
            }
        }
        let mut best = [f64::INFINITY; LANES];
        for (d, &c) in q.iter().enumerate().take(dim) {
            for (lane, b) in best.iter_mut().enumerate() {
                let base = lane * stride;
                let (near_sq, far_sq) = face_sq(chunk[base + d], chunk[base + dim + d], c);
                let candidate = total_far[lane] - far_sq + near_sq;
                if candidate < *b {
                    *b = candidate;
                }
            }
        }
        out[i..i + LANES].copy_from_slice(&best);
        i += LANES;
    }
    while i < n {
        let base = i * stride;
        out[i] = min_max_dist_sq(
            &rects[base..base + dim],
            &rects[base + dim..base + stride],
            q,
        );
        i += 1;
    }
}

/// D_max² from `q` to every rectangle of a flat rect buffer.
pub fn batch_max_dist_sq(q: &[f64], rects: &[f64], out: &mut Vec<f64>) {
    let dim = q.len();
    let stride = 2 * dim;
    let n = entry_count(rects, stride);
    prep_out(out, n);
    let mut i = 0;
    while i + LANES <= n {
        let chunk = &rects[i * stride..];
        let mut acc = [0.0f64; LANES];
        for (d, &c) in q.iter().enumerate().take(dim) {
            for (lane, a) in acc.iter_mut().enumerate() {
                let base = lane * stride;
                let l = chunk[base + d];
                let h = chunk[base + dim + d];
                let t = (c - l).abs().max((c - h).abs());
                *a += t * t;
            }
        }
        out[i..i + LANES].copy_from_slice(&acc);
        i += LANES;
    }
    while i < n {
        let base = i * stride;
        out[i] = max_dist_sq(
            &rects[base..base + dim],
            &rects[base + dim..base + stride],
            q,
        );
        i += 1;
    }
}

/// All three rectangle metrics (`D_min²`, `D_mm²`, `D_max²`) for every
/// entry in one sweep — what CRSS/FPSS candidate construction needs.
pub fn batch_rect_metrics(
    q: &[f64],
    rects: &[f64],
    d_min: &mut Vec<f64>,
    d_mm: &mut Vec<f64>,
    d_max: &mut Vec<f64>,
) {
    batch_min_dist_sq(q, rects, d_min);
    batch_min_max_dist_sq(q, rects, d_mm);
    batch_max_dist_sq(q, rects, d_max);
}

/// Sphere MINDIST² from `q` to every entry of flat `centers` (stride
/// `dim`) with per-entry `radii`.
pub fn batch_sphere_min_dist_sq(q: &[f64], centers: &[f64], radii: &[f64], out: &mut Vec<f64>) {
    batch_dist_sq(q, centers, out);
    debug_assert_eq!(out.len(), radii.len(), "radius per center required");
    for (o, &r) in out.iter_mut().zip(radii.iter()) {
        let d = o.sqrt() - r;
        *o = if d <= 0.0 { 0.0 } else { d * d };
    }
}

/// Sphere D_max² (= MINMAXDIST²) from `q` to every entry.
pub fn batch_sphere_max_dist_sq(q: &[f64], centers: &[f64], radii: &[f64], out: &mut Vec<f64>) {
    batch_dist_sq(q, centers, out);
    debug_assert_eq!(out.len(), radii.len(), "radius per center required");
    for (o, &r) in out.iter_mut().zip(radii.iter()) {
        let d = o.sqrt() + r;
        *o = d * d;
    }
}

/// All three sphere metrics for every entry (`D_mm = D_max` for
/// spheres).
pub fn batch_sphere_metrics(
    q: &[f64],
    centers: &[f64],
    radii: &[f64],
    d_min: &mut Vec<f64>,
    d_mm: &mut Vec<f64>,
    d_max: &mut Vec<f64>,
) {
    batch_dist_sq(q, centers, d_min);
    debug_assert_eq!(d_min.len(), radii.len(), "radius per center required");
    prep_out(d_mm, d_min.len());
    prep_out(d_max, d_min.len());
    for (i, &r) in radii.iter().enumerate() {
        let dist = d_min[i].sqrt();
        let near = dist - r;
        d_min[i] = if near <= 0.0 { 0.0 } else { near * near };
        let far = dist + r;
        d_mm[i] = far * far;
        d_max[i] = far * far;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random stream (splitmix64) so the tests need
    /// no RNG dependency at unit-test level.
    struct Mix(u64);
    impl Mix {
        fn next_f64(&mut self) -> f64 {
            self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            (z >> 11) as f64 / (1u64 << 53) as f64 * 20.0 - 10.0
        }
    }

    fn random_rects(mix: &mut Mix, n: usize, dim: usize) -> Vec<f64> {
        let mut rects = Vec::with_capacity(n * 2 * dim);
        for _ in 0..n {
            let a: Vec<f64> = (0..dim).map(|_| mix.next_f64()).collect();
            let b: Vec<f64> = (0..dim).map(|_| mix.next_f64()).collect();
            for d in 0..dim {
                rects.push(a[d].min(b[d]));
            }
            for d in 0..dim {
                rects.push(a[d].max(b[d]));
            }
        }
        rects
    }

    #[test]
    fn batch_matches_scalar_bitwise_across_counts() {
        let mut mix = Mix(7);
        for dim in [1, 2, 3, 10] {
            // Counts straddling the lane width, including 0 and exact
            // multiples.
            for n in [0usize, 1, 7, 8, 9, 16, 23] {
                let q: Vec<f64> = (0..dim).map(|_| mix.next_f64()).collect();
                let rects = random_rects(&mut mix, n, dim);
                let points: Vec<f64> = (0..n * dim).map(|_| mix.next_f64()).collect();
                let (mut o_min, mut o_mm, mut o_max, mut o_pt) =
                    (Vec::new(), Vec::new(), Vec::new(), Vec::new());
                batch_min_dist_sq(&q, &rects, &mut o_min);
                batch_min_max_dist_sq(&q, &rects, &mut o_mm);
                batch_max_dist_sq(&q, &rects, &mut o_max);
                batch_dist_sq(&q, &points, &mut o_pt);
                assert_eq!(o_min.len(), n);
                for i in 0..n {
                    let base = i * 2 * dim;
                    let (lo, hi) = (&rects[base..base + dim], &rects[base + dim..base + 2 * dim]);
                    assert_eq!(o_min[i].to_bits(), min_dist_sq(lo, hi, &q).to_bits());
                    assert_eq!(o_mm[i].to_bits(), min_max_dist_sq(lo, hi, &q).to_bits());
                    assert_eq!(o_max[i].to_bits(), max_dist_sq(lo, hi, &q).to_bits());
                    assert_eq!(
                        o_pt[i].to_bits(),
                        dist_sq(&points[i * dim..(i + 1) * dim], &q).to_bits()
                    );
                }
            }
        }
    }

    #[test]
    fn sphere_batch_matches_scalar_bitwise() {
        let mut mix = Mix(99);
        for (dim, n) in [(2usize, 11usize), (5, 8), (3, 0)] {
            let q: Vec<f64> = (0..dim).map(|_| mix.next_f64()).collect();
            let centers: Vec<f64> = (0..n * dim).map(|_| mix.next_f64()).collect();
            let radii: Vec<f64> = (0..n).map(|_| mix.next_f64().abs()).collect();
            let (mut o_min, mut o_mm, mut o_max) = (Vec::new(), Vec::new(), Vec::new());
            batch_sphere_metrics(&q, &centers, &radii, &mut o_min, &mut o_mm, &mut o_max);
            let mut solo = Vec::new();
            batch_sphere_min_dist_sq(&q, &centers, &radii, &mut solo);
            for i in 0..n {
                let c = &centers[i * dim..(i + 1) * dim];
                assert_eq!(
                    o_min[i].to_bits(),
                    sphere_min_dist_sq(c, radii[i], &q).to_bits()
                );
                assert_eq!(
                    o_max[i].to_bits(),
                    sphere_max_dist_sq(c, radii[i], &q).to_bits()
                );
                assert_eq!(o_mm[i].to_bits(), o_max[i].to_bits());
                assert_eq!(solo[i].to_bits(), o_min[i].to_bits());
            }
        }
    }

    #[test]
    fn scratch_buffers_are_reused_and_resized() {
        let mut out = vec![99.0; 64];
        batch_dist_sq(&[0.0, 0.0], &[3.0, 4.0], &mut out);
        assert_eq!(out, vec![25.0]);
        batch_dist_sq(&[0.0], &[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn metric_ordering_holds_per_entry() {
        let mut mix = Mix(3);
        let dim = 4;
        let q: Vec<f64> = (0..dim).map(|_| mix.next_f64()).collect();
        let rects = random_rects(&mut mix, 20, dim);
        let (mut o_min, mut o_mm, mut o_max) = (Vec::new(), Vec::new(), Vec::new());
        batch_rect_metrics(&q, &rects, &mut o_min, &mut o_mm, &mut o_max);
        for i in 0..20 {
            assert!(o_min[i] <= o_mm[i], "entry {i}: D_min² > D_mm²");
            assert!(o_mm[i] <= o_max[i], "entry {i}: D_mm² > D_max²");
        }
    }
}
