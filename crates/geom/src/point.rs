//! n-dimensional points with Euclidean distance.

use crate::{GeomError, Result};
use serde::{Deserialize, Serialize};

/// An n-dimensional point with `f64` coordinates.
///
/// Points are the unit of data in the similarity-search system: data objects
/// are feature vectors (colour histograms, Fourier coefficients, map
/// coordinates) stored in the leaves of the R\*-tree, and queries are posed
/// as a query point plus a neighbour count `k`.
///
/// Coordinates are stored in a boxed slice: a `Point` is two words plus the
/// coordinate payload, and its dimensionality is immutable after creation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Point {
    coords: Box<[f64]>,
}

impl Point {
    /// Creates a point from a coordinate vector.
    ///
    /// # Panics
    ///
    /// Panics if `coords` is empty. Use [`Point::try_new`] for a fallible
    /// variant that also validates finiteness.
    pub fn new(coords: Vec<f64>) -> Self {
        assert!(!coords.is_empty(), "points must have at least 1 dimension");
        Self {
            coords: coords.into_boxed_slice(),
        }
    }

    /// Creates a point, validating that it is non-empty and every coordinate
    /// is finite.
    pub fn try_new(coords: Vec<f64>) -> Result<Self> {
        if coords.is_empty() {
            return Err(GeomError::ZeroDimensional);
        }
        if coords.iter().any(|c| !c.is_finite()) {
            return Err(GeomError::NonFiniteCoordinate);
        }
        Ok(Self::new(coords))
    }

    /// The dimensionality of the point.
    #[inline]
    pub fn dim(&self) -> usize {
        self.coords.len()
    }

    /// The coordinate slice.
    #[inline]
    pub fn coords(&self) -> &[f64] {
        &self.coords
    }

    /// The coordinate along dimension `d`.
    ///
    /// # Panics
    ///
    /// Panics if `d >= self.dim()`.
    #[inline]
    pub fn coord(&self, d: usize) -> f64 {
        self.coords[d]
    }

    /// Squared Euclidean distance to another point.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the dimensionalities differ.
    #[inline]
    pub fn dist_sq(&self, other: &Point) -> f64 {
        debug_assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        crate::kernel::dist_sq(&self.coords, &other.coords)
    }

    /// Euclidean distance to another point.
    #[inline]
    pub fn dist(&self, other: &Point) -> f64 {
        self.dist_sq(other).sqrt()
    }

    /// Squared Euclidean distance to a point given as a coordinate slice
    /// (e.g. an entry of a flat-layout tree node). Same arithmetic — and
    /// therefore bit-identical results — as [`Point::dist_sq`].
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the dimensionalities differ.
    #[inline]
    pub fn dist_sq_coords(&self, other: &[f64]) -> f64 {
        debug_assert_eq!(self.dim(), other.len(), "dimension mismatch");
        crate::kernel::dist_sq(&self.coords, other)
    }

    /// Returns a point with every coordinate equal to `value`.
    pub fn splat(dim: usize, value: f64) -> Self {
        assert!(dim > 0, "points must have at least 1 dimension");
        Self {
            coords: vec![value; dim].into_boxed_slice(),
        }
    }
}

impl From<Vec<f64>> for Point {
    fn from(coords: Vec<f64>) -> Self {
        Point::new(coords)
    }
}

impl From<&[f64]> for Point {
    fn from(coords: &[f64]) -> Self {
        Point::new(coords.to_vec())
    }
}

impl std::fmt::Display for Point {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "(")?;
        for (i, c) in self.coords.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{c}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let p = Point::new(vec![1.0, 2.0, 3.0]);
        assert_eq!(p.dim(), 3);
        assert_eq!(p.coords(), &[1.0, 2.0, 3.0]);
        assert_eq!(p.coord(1), 2.0);
    }

    #[test]
    #[should_panic(expected = "at least 1 dimension")]
    fn empty_point_panics() {
        let _ = Point::new(vec![]);
    }

    #[test]
    fn try_new_rejects_nan() {
        assert_eq!(
            Point::try_new(vec![1.0, f64::NAN]),
            Err(GeomError::NonFiniteCoordinate)
        );
        assert_eq!(
            Point::try_new(vec![f64::INFINITY]),
            Err(GeomError::NonFiniteCoordinate)
        );
        assert_eq!(Point::try_new(vec![]), Err(GeomError::ZeroDimensional));
        assert!(Point::try_new(vec![0.0]).is_ok());
    }

    #[test]
    fn euclidean_distance() {
        let a = Point::new(vec![0.0, 0.0]);
        let b = Point::new(vec![3.0, 4.0]);
        assert_eq!(a.dist_sq(&b), 25.0);
        assert_eq!(a.dist(&b), 5.0);
        assert_eq!(a.dist(&a), 0.0);
    }

    #[test]
    fn dist_sq_coords_matches_point_distance() {
        let a = Point::new(vec![1.5, -2.0, 7.0]);
        let b = Point::new(vec![-4.0, 0.5, 3.25]);
        assert_eq!(
            a.dist_sq_coords(b.coords()).to_bits(),
            a.dist_sq(&b).to_bits()
        );
        assert_eq!(a.dist_sq_coords(a.coords()), 0.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(vec![1.5, -2.0, 7.0]);
        let b = Point::new(vec![-4.0, 0.5, 3.25]);
        assert_eq!(a.dist_sq(&b), b.dist_sq(&a));
    }

    #[test]
    fn splat_fills_coordinates() {
        let p = Point::splat(4, 2.5);
        assert_eq!(p.coords(), &[2.5, 2.5, 2.5, 2.5]);
    }

    #[test]
    fn display_formats_coordinates() {
        let p = Point::new(vec![1.0, 2.5]);
        assert_eq!(p.to_string(), "(1, 2.5)");
    }

    #[test]
    fn from_slice_and_vec() {
        let v = vec![1.0, 2.0];
        let p1: Point = v.clone().into();
        let p2: Point = v.as_slice().into();
        assert_eq!(p1, p2);
    }
}
