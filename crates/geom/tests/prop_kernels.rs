//! Property tests pinning the batch distance kernels to the scalar ones
//! **bitwise**.
//!
//! The batch kernels are the only arithmetic on the traversal hot path,
//! and every determinism pin in the repo (layout digests, backend parity,
//! simulated timings) rests on them producing exactly the scalar results
//! — not "close", the same `f64::to_bits`. These properties sweep random
//! dimensions, entry counts (including zero and counts that do not divide
//! the lane width), coordinates spanning signs and magnitudes, and both
//! region shapes (rects and spheres).

use proptest::prelude::*;
use sqda_geom::kernel;

/// Strategy: a dimension, a query point, and `n` flat point entries.
/// `n` ranges over 0 (empty node) through several lane widths plus
/// ragged tails.
fn points_case() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (1usize..=12, 0usize..=40).prop_flat_map(|(dim, n)| {
        let coord = -1e6..1e6f64;
        (
            proptest::collection::vec(coord.clone(), dim),
            proptest::collection::vec(coord, dim * n),
        )
    })
}

/// Strategy: a query point and `n` flat rect entries (lo then hi per
/// entry, hi = lo + extent so rects are valid).
fn rects_case() -> impl Strategy<Value = (Vec<f64>, Vec<f64>)> {
    (1usize..=10, 0usize..=40).prop_flat_map(|(dim, n)| {
        let coord = -1e5..1e5f64;
        let extent = 0.0..1e4f64;
        (
            proptest::collection::vec(coord.clone(), dim),
            proptest::collection::vec((coord, extent), dim * n).prop_map(move |pairs| {
                // Interleave into [lo.., hi..] per entry.
                let mut flat = Vec::with_capacity(2 * pairs.len());
                for entry in pairs.chunks(dim) {
                    flat.extend(entry.iter().map(|(l, _)| *l));
                    flat.extend(entry.iter().map(|(l, e)| l + e));
                }
                flat
            }),
        )
    })
}

/// Strategy: a query point, `n` flat centers, and `n` radii.
fn spheres_case() -> impl Strategy<Value = (Vec<f64>, Vec<f64>, Vec<f64>)> {
    (1usize..=12, 0usize..=40).prop_flat_map(|(dim, n)| {
        let coord = -1e5..1e5f64;
        (
            proptest::collection::vec(coord.clone(), dim),
            proptest::collection::vec(coord, dim * n),
            proptest::collection::vec(0.0..1e4f64, n),
        )
    })
}

fn assert_bits_eq(batch: &[f64], scalar: &[f64]) {
    assert_eq!(batch.len(), scalar.len());
    for (i, (b, s)) in batch.iter().zip(scalar.iter()).enumerate() {
        assert_eq!(
            b.to_bits(),
            s.to_bits(),
            "entry {i}: batch {b:?} != scalar {s:?}"
        );
    }
}

proptest! {
    /// batch_dist_sq == dist_sq per entry, bit for bit.
    #[test]
    fn batch_dist_matches_scalar((q, points) in points_case()) {
        let mut out = vec![f64::NAN; 3]; // stale content must be overwritten
        kernel::batch_dist_sq(&q, &points, &mut out);
        let scalar: Vec<f64> = points.chunks(q.len()).map(|p| kernel::dist_sq(&q, p)).collect();
        assert_bits_eq(&out, &scalar);
    }

    /// The three rect batch kernels and the fused metrics kernel all
    /// match their scalar counterparts bit for bit.
    #[test]
    fn batch_rect_kernels_match_scalar((q, rects) in rects_case()) {
        let dim = q.len();
        let mut d_min = Vec::new();
        let mut d_mm = Vec::new();
        let mut d_max = Vec::new();
        kernel::batch_min_dist_sq(&q, &rects, &mut d_min);
        kernel::batch_min_max_dist_sq(&q, &rects, &mut d_mm);
        kernel::batch_max_dist_sq(&q, &rects, &mut d_max);

        let lo_hi: Vec<(&[f64], &[f64])> = rects
            .chunks(2 * dim)
            .map(|e| (&e[..dim], &e[dim..]))
            .collect();
        let s_min: Vec<f64> = lo_hi.iter().map(|(l, h)| kernel::min_dist_sq(l, h, &q)).collect();
        let s_mm: Vec<f64> = lo_hi.iter().map(|(l, h)| kernel::min_max_dist_sq(l, h, &q)).collect();
        let s_max: Vec<f64> = lo_hi.iter().map(|(l, h)| kernel::max_dist_sq(l, h, &q)).collect();
        assert_bits_eq(&d_min, &s_min);
        assert_bits_eq(&d_mm, &s_mm);
        assert_bits_eq(&d_max, &s_max);

        // The fused kernel returns the same three vectors.
        let (mut f_min, mut f_mm, mut f_max) = (Vec::new(), Vec::new(), Vec::new());
        kernel::batch_rect_metrics(&q, &rects, &mut f_min, &mut f_mm, &mut f_max);
        assert_bits_eq(&f_min, &s_min);
        assert_bits_eq(&f_mm, &s_mm);
        assert_bits_eq(&f_max, &s_max);
    }

    /// Sphere batch kernels (and the fused variant, where D_mm == D_max)
    /// match the scalar sphere kernels bit for bit.
    #[test]
    fn batch_sphere_kernels_match_scalar((q, centers, radii) in spheres_case()) {
        let dim = q.len();
        let mut d_min = Vec::new();
        let mut d_max = Vec::new();
        kernel::batch_sphere_min_dist_sq(&q, &centers, &radii, &mut d_min);
        kernel::batch_sphere_max_dist_sq(&q, &centers, &radii, &mut d_max);

        let s_min: Vec<f64> = centers
            .chunks(dim)
            .zip(radii.iter())
            .map(|(c, &r)| kernel::sphere_min_dist_sq(c, r, &q))
            .collect();
        let s_max: Vec<f64> = centers
            .chunks(dim)
            .zip(radii.iter())
            .map(|(c, &r)| kernel::sphere_max_dist_sq(c, r, &q))
            .collect();
        assert_bits_eq(&d_min, &s_min);
        assert_bits_eq(&d_max, &s_max);

        let (mut f_min, mut f_mm, mut f_max) = (Vec::new(), Vec::new(), Vec::new());
        kernel::batch_sphere_metrics(&q, &centers, &radii, &mut f_min, &mut f_mm, &mut f_max);
        assert_bits_eq(&f_min, &s_min);
        assert_bits_eq(&f_mm, &s_max); // for spheres the MINMAXDIST bound is D_max
        assert_bits_eq(&f_max, &s_max);
    }

    /// Exact lane-width multiples exercise the pure-chunk path with no
    /// scalar tail; one past the multiple exercises the 1-entry tail.
    #[test]
    fn lane_boundary_counts(dim in 1usize..=6, chunks in 1usize..=3, q0 in -100.0..100.0f64) {
        for extra in [0usize, 1] {
            let n = chunks * 8 + extra;
            let q: Vec<f64> = (0..dim).map(|d| q0 + d as f64).collect();
            let points: Vec<f64> = (0..n * dim).map(|i| (i as f64) * 0.37 - 40.0).collect();
            let mut out = Vec::new();
            kernel::batch_dist_sq(&q, &points, &mut out);
            let scalar: Vec<f64> = points.chunks(dim).map(|p| kernel::dist_sq(&q, p)).collect();
            assert_bits_eq(&out, &scalar);
        }
    }
}
