//! Property-based tests for the point-to-MBR distance metrics.
//!
//! These invariants are exactly what the pruning rules of the paper's
//! algorithms rely on: if any of them were violated, the k-NN search could
//! prune a subtree containing a true nearest neighbour.

use proptest::prelude::*;
use sqda_geom::{Point, Rect, Sphere};

/// Strategy: a dimension count and a pair (rect, point) in that dimension.
fn rect_and_point(max_dim: usize) -> impl Strategy<Value = (Rect, Point)> {
    (1..=max_dim).prop_flat_map(|dim| {
        let coord = -1000.0..1000.0f64;
        let extent = 0.0..500.0f64;
        (
            proptest::collection::vec((coord.clone(), extent), dim),
            proptest::collection::vec(-1500.0..1500.0f64, dim),
        )
            .prop_map(|(corners, pcoords)| {
                let lo: Vec<f64> = corners.iter().map(|(l, _)| *l).collect();
                let hi: Vec<f64> = corners.iter().map(|(l, e)| l + e).collect();
                (Rect::new(lo, hi).unwrap(), Point::new(pcoords))
            })
    })
}

/// Sample points inside a rect on a per-dimension grid of fractions.
fn sample_points_inside(r: &Rect) -> Vec<Point> {
    let fractions = [0.0, 0.25, 0.5, 0.75, 1.0];
    // A full grid is exponential; instead take "diagonal" samples plus
    // per-dimension extreme variations.
    let mut pts = Vec::new();
    for f in fractions {
        let coords: Vec<f64> = (0..r.dim())
            .map(|d| r.lo()[d] + f * (r.hi()[d] - r.lo()[d]))
            .collect();
        pts.push(Point::new(coords));
    }
    for d in 0..r.dim() {
        for f in [0.0, 1.0] {
            let coords: Vec<f64> = (0..r.dim())
                .map(|j| {
                    if j == d {
                        r.lo()[j] + f * (r.hi()[j] - r.lo()[j])
                    } else {
                        (r.lo()[j] + r.hi()[j]) / 2.0
                    }
                })
                .collect();
            pts.push(Point::new(coords));
        }
    }
    pts
}

proptest! {
    /// D_min ≤ D_mm ≤ D_max for every point/rect pair.
    #[test]
    fn metric_ordering((r, p) in rect_and_point(8)) {
        let dmin = r.min_dist_sq(&p);
        let dmm = r.min_max_dist_sq(&p);
        let dmax = r.max_dist_sq(&p);
        prop_assert!(dmin <= dmm * (1.0 + 1e-12) + 1e-9);
        prop_assert!(dmm <= dmax * (1.0 + 1e-12) + 1e-9);
    }

    /// D_min is a lower bound on the distance to any point inside the MBR,
    /// and D_max an upper bound.
    #[test]
    fn min_max_bound_interior_points((r, p) in rect_and_point(6)) {
        let dmin = r.min_dist_sq(&p);
        let dmax = r.max_dist_sq(&p);
        for q in sample_points_inside(&r) {
            let d = p.dist_sq(&q);
            prop_assert!(d + 1e-9 >= dmin, "interior point closer than Dmin");
            prop_assert!(d <= dmax + 1e-9, "interior point farther than Dmax");
        }
    }

    /// For a point inside the rectangle D_min is exactly zero.
    #[test]
    fn mindist_zero_inside((r, _) in rect_and_point(6)) {
        let c = r.center();
        prop_assert_eq!(r.min_dist_sq(&c), 0.0);
    }

    /// MINMAXDIST guarantee: there is a face-point of the MBR at distance
    /// ≤ D_mm. We verify against the construction: for the minimizing
    /// dimension there is a vertex combination realizing the value.
    #[test]
    fn minmaxdist_is_realized_by_a_vertex((r, p) in rect_and_point(5)) {
        let dmm = r.min_max_dist_sq(&p);
        // Enumerate all vertices; for each dimension k, the candidate is
        // nearest face along k + farthest corner elsewhere. The realized
        // value must equal the distance to an actual boundary point.
        let n = r.dim();
        let mut best = f64::INFINITY;
        for k in 0..n {
            let mut coords = vec![0.0; n];
            for (d, coord) in coords.iter_mut().enumerate() {
                let c = p.coord(d);
                let mid = (r.lo()[d] + r.hi()[d]) / 2.0;
                *coord = if d == k {
                    // nearer face
                    if c <= mid { r.lo()[d] } else { r.hi()[d] }
                } else {
                    // farther face
                    if c >= mid { r.lo()[d] } else { r.hi()[d] }
                };
            }
            best = best.min(p.dist_sq(&Point::new(coords)));
        }
        prop_assert!((dmm - best).abs() <= 1e-6 * (1.0 + best),
            "Dmm {} != realized {}", dmm, best);
    }

    /// Union contains both operands; intersection is symmetric.
    #[test]
    fn union_contains_operands((r, p) in rect_and_point(6)) {
        let other = Rect::from_point(&p);
        let u = r.union(&other);
        prop_assert!(u.contains_rect(&r));
        prop_assert!(u.contains_rect(&other));
        prop_assert!(u.area() + 1e-9 >= r.area());
        prop_assert_eq!(r.intersects(&other), other.intersects(&r));
    }

    /// Sphere-rect intersection agrees with Dmin; containment with Dmax.
    #[test]
    fn sphere_predicates_consistent((r, p) in rect_and_point(6), radius in 0.0..2000.0f64) {
        let s = Sphere::new(p.clone(), radius);
        prop_assert_eq!(s.intersects_rect(&r), r.min_dist_sq(&p) <= radius * radius);
        prop_assert_eq!(s.contains_rect(&r), r.max_dist_sq(&p) <= radius * radius);
        if s.contains_rect(&r) {
            prop_assert!(s.intersects_rect(&r));
        }
    }

    /// Enlargement is non-negative and zero when the rect already contains
    /// the other.
    #[test]
    fn enlargement_properties((r, p) in rect_and_point(6)) {
        let pr = Rect::from_point(&p);
        let e = r.enlargement(&pr);
        prop_assert!(e >= -1e-9);
        if r.contains_point(&p) {
            prop_assert!(e.abs() <= 1e-9);
        }
    }

    /// Euclidean distance satisfies the triangle inequality.
    #[test]
    fn triangle_inequality(
        a in proptest::collection::vec(-100.0..100.0f64, 4),
        b in proptest::collection::vec(-100.0..100.0f64, 4),
        c in proptest::collection::vec(-100.0..100.0f64, 4),
    ) {
        let (pa, pb, pc) = (Point::new(a), Point::new(b), Point::new(c));
        prop_assert!(pa.dist(&pc) <= pa.dist(&pb) + pb.dist(&pc) + 1e-9);
    }
}
