//! Property-based tests: arbitrary insertion workloads keep the SS-tree
//! valid and its answers exact.

use proptest::prelude::*;
use sqda_core::{exec::run_query, AlgorithmKind};
use sqda_geom::Point;
use sqda_sstree::{SsConfig, SsTree};
use sqda_storage::ArrayStore;
use std::sync::Arc;

fn build(points: &[(f64, f64)]) -> SsTree<ArrayStore> {
    let store = Arc::new(ArrayStore::new(4, 1449, 11));
    let mut tree = SsTree::create(store, SsConfig::new(2).with_max_entries(5)).unwrap();
    for (i, (x, y)) in points.iter().enumerate() {
        tree.insert(Point::new(vec![*x, *y]), i as u64).unwrap();
    }
    tree
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn invariants_hold(
        points in proptest::collection::vec((-100.0..100.0f64, -100.0..100.0f64), 1..300),
    ) {
        let tree = build(&points);
        prop_assert_eq!(tree.num_objects() as usize, points.len());
        tree.validate().unwrap().unwrap();
    }

    #[test]
    fn algorithms_match_brute_force(
        points in proptest::collection::vec((-100.0..100.0f64, -100.0..100.0f64), 1..250),
        qx in -120.0..120.0f64,
        qy in -120.0..120.0f64,
        k in 1usize..25,
    ) {
        let tree = build(&points);
        let q = Point::new(vec![qx, qy]);
        let mut want: Vec<f64> = points
            .iter()
            .map(|(x, y)| (qx - x) * (qx - x) + (qy - y) * (qy - y))
            .collect();
        want.sort_by(|a, b| a.partial_cmp(b).unwrap());
        want.truncate(k);
        for kind in AlgorithmKind::ALL {
            let mut algo = kind.build(&tree, q.clone(), k).unwrap();
            let run = run_query(&tree, algo.as_mut()).unwrap();
            prop_assert_eq!(run.results.len(), want.len(), "{}", kind);
            for (g, w) in run.results.iter().zip(want.iter()) {
                prop_assert!((g.dist_sq - w).abs() < 1e-9, "{}", kind);
            }
        }
    }
}
