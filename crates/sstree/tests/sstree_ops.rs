//! SS-tree end-to-end: structural invariants, exact answers under all
//! four similarity-search algorithms, and parity with the R\*-tree.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqda_core::{exec::run_query, AlgorithmKind, Simulation, Workload};
use sqda_geom::Point;
use sqda_simkernel::SystemParams;
use sqda_sstree::{SsConfig, SsTree};
use sqda_storage::ArrayStore;
use std::sync::Arc;

fn random_points(n: usize, dim: usize, seed: u64) -> Vec<Point> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Point::new((0..dim).map(|_| rng.gen_range(0.0..100.0)).collect()))
        .collect()
}

fn build(points: &[Point], dim: usize, disks: u32, fanout: usize) -> SsTree<ArrayStore> {
    let store = Arc::new(ArrayStore::new(disks, 1449, 5));
    let mut tree = SsTree::create(store, SsConfig::new(dim).with_max_entries(fanout)).unwrap();
    for (i, p) in points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    tree
}

fn brute(points: &[Point], q: &Point, k: usize) -> Vec<f64> {
    let mut d: Vec<f64> = points.iter().map(|p| q.dist_sq(p)).collect();
    d.sort_by(|a, b| a.partial_cmp(b).unwrap());
    d.truncate(k);
    d
}

#[test]
fn insert_and_validate() {
    let points = random_points(2000, 2, 1);
    let tree = build(&points, 2, 6, 8);
    assert_eq!(tree.num_objects(), 2000);
    assert!(tree.height() > 2);
    tree.validate().unwrap().unwrap();
}

#[test]
fn validate_high_dimensional() {
    let points = random_points(1500, 8, 2);
    let tree = build(&points, 8, 4, 12);
    tree.validate().unwrap().unwrap();
}

#[test]
fn knn_matches_brute_force() {
    let points = random_points(1200, 3, 3);
    let tree = build(&points, 3, 6, 10);
    let mut rng = StdRng::seed_from_u64(4);
    for _ in 0..10 {
        let q = Point::new((0..3).map(|_| rng.gen_range(0.0..100.0)).collect());
        for k in [1usize, 7, 40] {
            let got = tree.knn(&q, k).unwrap();
            let want = brute(&points, &q, k);
            assert_eq!(got.len(), want.len());
            for (g, w) in got.iter().zip(want.iter()) {
                assert!((g.dist_sq - w).abs() < 1e-9, "k={k}");
            }
        }
    }
}

#[test]
fn all_four_algorithms_exact_over_spheres() {
    let points = random_points(3000, 2, 6);
    let tree = build(&points, 2, 10, 16);
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..8 {
        let q = Point::new(vec![rng.gen_range(0.0..100.0), rng.gen_range(0.0..100.0)]);
        for k in [1usize, 10, 60] {
            let want = brute(&points, &q, k);
            for kind in AlgorithmKind::ALL {
                let mut algo = kind.build(&tree, q.clone(), k).unwrap();
                let run = run_query(&tree, algo.as_mut()).unwrap();
                assert_eq!(run.results.len(), k, "{kind}");
                for (g, w) in run.results.iter().zip(want.iter()) {
                    assert!((g.dist_sq - w).abs() < 1e-9, "{kind} k={k}");
                }
            }
        }
    }
}

#[test]
fn woptss_remains_lower_bound_over_spheres() {
    let points = random_points(2500, 4, 8);
    let tree = build(&points, 4, 8, 12);
    let q = Point::splat(4, 50.0);
    for k in [5usize, 25] {
        let mut wopt = AlgorithmKind::Woptss.build(&tree, q.clone(), k).unwrap();
        let bound = run_query(&tree, wopt.as_mut()).unwrap().nodes_visited;
        for kind in AlgorithmKind::REAL {
            let mut algo = kind.build(&tree, q.clone(), k).unwrap();
            let run = run_query(&tree, algo.as_mut()).unwrap();
            assert!(run.nodes_visited >= bound, "{kind}");
        }
    }
}

#[test]
fn crss_batches_bounded_over_spheres() {
    let points = random_points(4000, 2, 9);
    let tree = build(&points, 2, 5, 16);
    let q = Point::splat(2, 50.0);
    let mut algo = AlgorithmKind::Crss.build(&tree, q, 30).unwrap();
    let run = run_query(&tree, algo.as_mut()).unwrap();
    assert!(
        run.max_batch <= 5,
        "batch {} exceeds 5 disks",
        run.max_batch
    );
}

#[test]
fn sstree_runs_under_the_simulator() {
    let points = random_points(3000, 5, 10);
    let tree = build(&points, 5, 8, 14);
    let sim = Simulation::new(&tree, SystemParams::with_disks(8)).unwrap();
    let queries: Vec<Point> = random_points(20, 5, 11);
    let w = Workload::poisson(queries, 10, 5.0, 12);
    let wopt = sim.run(AlgorithmKind::Woptss, &w, 13).unwrap();
    let crss = sim.run(AlgorithmKind::Crss, &w, 13).unwrap();
    let bbss = sim.run(AlgorithmKind::Bbss, &w, 13).unwrap();
    assert_eq!(crss.completed, 20);
    assert!(wopt.mean_response_s <= crss.mean_response_s * 1.001);
    // The paper's headline transfers to the SS-tree: CRSS beats BBSS.
    assert!(crss.mean_response_s < bbss.mean_response_s);
}

#[test]
fn sstree_parity_with_rstar_answers() {
    use sqda_rstar::decluster::ProximityIndex;
    use sqda_rstar::{RStarConfig, RStarTree};
    let points = random_points(1500, 3, 14);
    let ss = build(&points, 3, 4, 10);
    let store = Arc::new(ArrayStore::new(4, 1449, 15));
    let mut rs = RStarTree::create(
        store,
        RStarConfig::new(3).with_max_entries(10),
        Box::new(ProximityIndex),
    )
    .unwrap();
    for (i, p) in points.iter().enumerate() {
        rs.insert(p.clone(), i as u64).unwrap();
    }
    let q = Point::splat(3, 42.0);
    let a = ss.knn(&q, 20).unwrap();
    let b = rs.knn(&q, 20).unwrap();
    for (x, y) in a.iter().zip(b.iter()) {
        assert!((x.dist_sq - y.dist_sq).abs() < 1e-9);
    }
}

#[test]
fn dimension_mismatch_rejected() {
    let store = Arc::new(ArrayStore::new(2, 100, 1));
    let mut tree = SsTree::create(store, SsConfig::new(2)).unwrap();
    assert!(tree.insert(Point::splat(3, 1.0), 0).is_err());
}

#[test]
fn duplicate_points() {
    let store = Arc::new(ArrayStore::new(4, 100, 2));
    let mut tree = SsTree::create(store, SsConfig::new(2).with_max_entries(6)).unwrap();
    for i in 0..100u64 {
        tree.insert(Point::new(vec![1.0, 1.0]), i).unwrap();
    }
    tree.validate().unwrap().unwrap();
    let got = tree.knn(&Point::new(vec![1.0, 1.0]), 100).unwrap();
    assert_eq!(got.len(), 100);
}
