//! The SS-tree: creation, insertion with centroid-guided descent,
//! variance-based splits, and declustered page placement.

use crate::codec;
use crate::node::{SsLeafEntry, SsNode, SsSphereEntry};
use sqda_geom::{GeomError, Point};
use sqda_storage::{DiskId, IoStats, NodeCache, PageId, PageStore, StorageError};
use std::sync::Arc;

/// Errors from SS-tree operations.
#[derive(Debug)]
pub enum SsError {
    /// Underlying storage failed.
    Storage(StorageError),
    /// Geometry construction failed.
    Geometry(GeomError),
    /// A point's dimensionality does not match the tree's.
    DimensionMismatch {
        /// The tree's dimensionality.
        expected: usize,
        /// The offending point's dimensionality.
        got: usize,
    },
}

impl From<StorageError> for SsError {
    fn from(e: StorageError) -> Self {
        SsError::Storage(e)
    }
}
impl From<GeomError> for SsError {
    fn from(e: GeomError) -> Self {
        SsError::Geometry(e)
    }
}
impl std::fmt::Display for SsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SsError::Storage(e) => write!(f, "storage error: {e}"),
            SsError::Geometry(e) => write!(f, "geometry error: {e}"),
            SsError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "dimension mismatch: tree is {expected}-d, point is {got}-d"
                )
            }
        }
    }
}
impl std::error::Error for SsError {}

/// SS-tree failures cross the query-engine boundary as [`sqda_core::QueryError`]
/// like every other access method's.
impl From<SsError> for sqda_core::QueryError {
    fn from(e: SsError) -> Self {
        match e {
            SsError::Storage(e) => sqda_core::QueryError::from(e),
            SsError::Geometry(_) | SsError::DimensionMismatch { .. } => {
                sqda_core::QueryError::Invariant(e.to_string())
            }
        }
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, SsError>;

/// SS-tree configuration. Sphere entries store `d + 1` scalars instead of
/// the MBR's `2d`, so directory fan-out is nearly double the R\*-tree's
/// at the same page size — one of the SS-tree's selling points.
#[derive(Debug, Clone, PartialEq)]
pub struct SsConfig {
    /// Dimensionality.
    pub dim: usize,
    /// Page size in bytes.
    pub page_size: usize,
    /// Max entries per internal node.
    pub max_internal_entries: usize,
    /// Max entries per leaf.
    pub max_leaf_entries: usize,
    /// Minimum fill fraction (40%, as in the SS-tree paper).
    pub min_fill_fraction: f64,
}

impl SsConfig {
    /// Default 4 KiB pages.
    pub fn new(dim: usize) -> Self {
        Self::with_page_size(dim, sqda_storage::DEFAULT_PAGE_SIZE)
    }

    /// Explicit page size.
    ///
    /// # Panics
    ///
    /// Panics for zero dimensionality or pages too small for 4 entries.
    pub fn with_page_size(dim: usize, page_size: usize) -> Self {
        assert!(dim > 0, "dimensionality must be positive");
        let max_internal = (page_size - codec::HEADER_SIZE) / codec::internal_entry_size(dim);
        let max_leaf = (page_size - codec::HEADER_SIZE) / codec::leaf_entry_size(dim);
        assert!(
            max_internal >= 4 && max_leaf >= 4,
            "page size {page_size} too small for {dim}-d SS-tree nodes"
        );
        Self {
            dim,
            page_size,
            max_internal_entries: max_internal,
            max_leaf_entries: max_leaf,
            min_fill_fraction: 0.4,
        }
    }

    /// Caps capacities (tests).
    ///
    /// # Panics
    ///
    /// Panics if `max < 4`.
    pub fn with_max_entries(mut self, max: usize) -> Self {
        assert!(max >= 4, "nodes need at least 4 entries");
        self.max_internal_entries = self.max_internal_entries.min(max);
        self.max_leaf_entries = self.max_leaf_entries.min(max);
        self
    }

    /// Minimum internal entries.
    pub fn min_internal_entries(&self) -> usize {
        min_fill(self.max_internal_entries, self.min_fill_fraction)
    }

    /// Minimum leaf entries.
    pub fn min_leaf_entries(&self) -> usize {
        min_fill(self.max_leaf_entries, self.min_fill_fraction)
    }
}

fn min_fill(max: usize, fraction: f64) -> usize {
    (((max as f64) * fraction).round() as usize).clamp(2, max / 2)
}

/// A declustered SS-tree (insert + query; deletion is provided by
/// rebuilding in this reproduction — the paper's experiments never
/// delete through the SS-tree).
pub struct SsTree<S: PageStore> {
    store: Arc<S>,
    config: SsConfig,
    root: PageId,
    height: u32,
    num_objects: u64,
    next_disk: std::sync::atomic::AtomicU64,
    cache: Option<Arc<NodeCache<SsNode>>>,
}

impl<S: PageStore> SsTree<S> {
    /// Creates an empty tree (root leaf on disk 0).
    pub fn create(store: Arc<S>, config: SsConfig) -> Result<Self> {
        let root = store.allocate(DiskId(0))?;
        store.write(root, codec::encode_node(&SsNode::Leaf(vec![]), config.dim))?;
        Ok(Self {
            store,
            config,
            root,
            height: 1,
            num_objects: 0,
            next_disk: std::sync::atomic::AtomicU64::new(1),
            cache: None,
        })
    }

    /// Attaches a decoded-node cache; subsequent `read_node` calls that
    /// hit it skip both the page read and the decode.
    pub fn with_node_cache(mut self, cache: Arc<NodeCache<SsNode>>) -> Self {
        self.cache = Some(cache);
        self
    }

    /// Attaches (or replaces) a decoded-node cache.
    pub fn set_node_cache(&mut self, cache: Arc<NodeCache<SsNode>>) {
        self.cache = Some(cache);
    }

    /// The attached decoded-node cache, if any.
    pub fn node_cache(&self) -> Option<&Arc<NodeCache<SsNode>>> {
        self.cache.as_ref()
    }

    /// Store I/O counters merged with the node-cache counters.
    pub fn io_stats(&self) -> IoStats {
        let mut stats = self.store.stats();
        if let Some(cache) = &self.cache {
            let c = cache.stats();
            stats.cache_hits = c.hits;
            stats.cache_misses = c.misses;
        }
        stats
    }

    /// The root page.
    pub fn root_page(&self) -> PageId {
        self.root
    }

    /// Tree height (1 = root is a leaf).
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Indexed objects.
    pub fn num_objects(&self) -> u64 {
        self.num_objects
    }

    /// Dimensionality.
    pub fn dim(&self) -> usize {
        self.config.dim
    }

    /// The configuration.
    pub fn config(&self) -> &SsConfig {
        &self.config
    }

    /// The backing store.
    pub fn store(&self) -> &Arc<S> {
        &self.store
    }

    /// Reads a node, consulting the decoded-node cache when one is
    /// attached.
    ///
    /// Returns a shared handle: a cache hit is a reference-count bump, no
    /// entry data is copied or re-decoded.
    pub fn read_node(&self, page: PageId) -> Result<Arc<SsNode>> {
        let dim = self.config.dim;
        match &self.cache {
            Some(cache) => cache.read_through(self.store.as_ref(), page, |bytes| {
                codec::decode_node(bytes, dim, page).map_err(SsError::from)
            }),
            None => {
                let bytes = self.store.read(page)?;
                Ok(Arc::new(codec::decode_node(bytes, dim, page)?))
            }
        }
    }

    fn write_node(&self, page: PageId, node: &SsNode) -> Result<()> {
        self.store
            .write(page, codec::encode_node(node, self.config.dim))?;
        if let Some(cache) = &self.cache {
            cache.invalidate(page);
        }
        Ok(())
    }

    /// Places a freshly split node: the disk whose sibling spheres are
    /// least proximal to the new sphere (the PI idea in sphere geometry),
    /// ties broken towards data balance.
    fn allocate_declustered(
        &self,
        center: &Point,
        radius: f64,
        siblings: &[(Point, f64, DiskId)],
    ) -> Result<PageId> {
        let num = self.store.num_disks() as usize;
        if siblings.is_empty() {
            // Round-robin when no geometric signal exists (e.g. new root).
            let d = self
                .next_disk
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            return Ok(self.store.allocate(DiskId((d % num as u64) as u32))?);
        }
        let mut proximity = vec![0.0f64; num];
        for (c, r, disk) in siblings {
            // Overlap depth of the two spheres (0 when disjoint).
            let gap = center.dist(c) - (radius + r);
            let prox = (-gap).max(0.0);
            proximity[disk.index()] += prox;
        }
        let pages = self.store.pages_per_disk();
        let best = (0..num)
            .min_by(|&a, &b| {
                proximity[a]
                    .partial_cmp(&proximity[b])
                    .expect("finite")
                    .then(
                        pages
                            .get(a)
                            .copied()
                            .unwrap_or(0)
                            .cmp(&pages.get(b).copied().unwrap_or(0)),
                    )
                    .then(a.cmp(&b))
            })
            .unwrap_or(0);
        Ok(self.store.allocate(DiskId(best as u32))?)
    }

    /// Inserts a point.
    pub fn insert(&mut self, point: Point, object: u64) -> Result<()> {
        if point.dim() != self.config.dim {
            return Err(SsError::DimensionMismatch {
                expected: self.config.dim,
                got: point.dim(),
            });
        }
        // Descend by nearest centroid, recording the path. The descent
        // only reads, so it borrows the shared cached nodes.
        let mut path: Vec<(PageId, Option<usize>)> = vec![(self.root, None)];
        let mut node = self.read_node(self.root)?;
        while let SsNode::Internal { entries, .. } = node.as_ref() {
            let idx = entries
                .iter()
                .enumerate()
                .min_by(|(_, a), (_, b)| {
                    a.center
                        .dist_sq(&point)
                        .partial_cmp(&b.center.dist_sq(&point))
                        .expect("finite")
                })
                .map(|(i, _)| i)
                .expect("internal nodes are non-empty");
            let child = entries[idx].child;
            path.push((child, Some(idx)));
            node = self.read_node(child)?;
        }
        let (leaf_page, _) = *path.last().expect("path non-empty");
        // Mutation detaches a private copy; the shared cached node stays
        // untouched for concurrent readers until the write invalidates it.
        let mut current: SsNode = (*node).clone();
        drop(node);
        match &mut current {
            SsNode::Leaf(entries) => entries.push(SsLeafEntry { point, object }),
            SsNode::Internal { .. } => unreachable!("descent ends at a leaf"),
        }

        // Ascend, splitting while over capacity.
        let mut page = leaf_page;
        let mut path_idx = path.len() - 1;
        loop {
            let max = if current.is_leaf() {
                self.config.max_leaf_entries
            } else {
                self.config.max_internal_entries
            };
            if current.len() <= max {
                self.write_node(page, &current)?;
                self.propagate(&path[..=path_idx])?;
                break;
            }
            let (keep, moved) = split_node(&current, &self.config);
            let (mc, mr) = moved.bounding_sphere().expect("non-empty split group");
            let siblings = if page == self.root {
                Vec::new()
            } else {
                let parent = self.read_node(path[path_idx - 1].0)?;
                match parent.as_ref() {
                    SsNode::Internal { entries, .. } => entries
                        .iter()
                        .map(|e| {
                            let disk = self.store.placement(e.child).map(|p| p.disk);
                            disk.map(|d| (e.center.clone(), e.radius, d))
                        })
                        .collect::<std::result::Result<Vec<_>, _>>()?,
                    SsNode::Leaf(_) => unreachable!("parents are internal"),
                }
            };
            let new_page = self.allocate_declustered(&mc, mr, &siblings)?;
            self.write_node(page, &keep)?;
            self.write_node(new_page, &moved)?;
            let (kc, kr) = keep.bounding_sphere().expect("non-empty split group");
            let keep_entry = SsSphereEntry {
                center: kc,
                radius: kr,
                child: page,
                count: keep.object_count(),
            };
            let moved_entry = SsSphereEntry {
                center: mc,
                radius: mr,
                child: new_page,
                count: moved.object_count(),
            };
            if page == self.root {
                let new_level = current.level() + 1;
                let root_node = SsNode::Internal {
                    level: new_level,
                    entries: vec![keep_entry, moved_entry],
                };
                let root_page = {
                    let d = self
                        .next_disk
                        .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    self.store
                        .allocate(DiskId((d % self.store.num_disks() as u64) as u32))?
                };
                self.write_node(root_page, &root_node)?;
                self.root = root_page;
                self.height += 1;
                break;
            }
            path_idx -= 1;
            page = path[path_idx].0;
            let child_idx = path[path_idx + 1].1.expect("non-root path step");
            let mut parent = (*self.read_node(page)?).clone();
            match &mut parent {
                SsNode::Internal { entries, .. } => {
                    entries[child_idx] = keep_entry;
                    entries.push(moved_entry);
                }
                SsNode::Leaf(_) => unreachable!("parents are internal"),
            }
            current = parent;
        }
        self.num_objects += 1;
        Ok(())
    }

    /// Recomputes centroid/radius/count along the path, bottom-up.
    fn propagate(&self, path: &[(PageId, Option<usize>)]) -> Result<()> {
        for i in (1..path.len()).rev() {
            let child = self.read_node(path[i].0)?;
            let parent_page = path[i - 1].0;
            let mut parent = (*self.read_node(parent_page)?).clone();
            let idx = path[i].1.expect("non-root step");
            match &mut parent {
                SsNode::Internal { entries, .. } => {
                    let (c, r) = child.bounding_sphere().expect("non-empty child");
                    let e = &mut entries[idx];
                    debug_assert_eq!(e.child, path[i].0);
                    e.center = c;
                    e.radius = r;
                    e.count = child.object_count();
                }
                SsNode::Leaf(_) => unreachable!("path interior nodes are internal"),
            }
            self.write_node(parent_page, &parent)?;
        }
        Ok(())
    }

    /// k nearest neighbours through the generic best-first search.
    pub fn knn(
        &self,
        center: &Point,
        k: usize,
    ) -> std::result::Result<Vec<sqda_core::Neighbor>, sqda_core::QueryError> {
        sqda_core::best_first_knn(self, center, k)
    }

    /// Validates structural invariants.
    pub fn validate(&self) -> Result<std::result::Result<(), crate::SsValidationError>> {
        crate::validate::validate(self)
    }
}

/// Variance-based split (White & Jain): pick the dimension with the
/// highest variance of entry centers, sort along it, and cut at the
/// position minimizing the summed variance of the two groups.
fn split_node(node: &SsNode, config: &SsConfig) -> (SsNode, SsNode) {
    match node {
        SsNode::Leaf(entries) => {
            let m = config.min_leaf_entries();
            let centers: Vec<&Point> = entries.iter().map(|e| &e.point).collect();
            let (g1, g2) = variance_split(&centers, m);
            (
                SsNode::Leaf(g1.into_iter().map(|i| entries[i].clone()).collect()),
                SsNode::Leaf(g2.into_iter().map(|i| entries[i].clone()).collect()),
            )
        }
        SsNode::Internal { level, entries } => {
            let m = config.min_internal_entries();
            let centers: Vec<&Point> = entries.iter().map(|e| &e.center).collect();
            let (g1, g2) = variance_split(&centers, m);
            (
                SsNode::Internal {
                    level: *level,
                    entries: g1.into_iter().map(|i| entries[i].clone()).collect(),
                },
                SsNode::Internal {
                    level: *level,
                    entries: g2.into_iter().map(|i| entries[i].clone()).collect(),
                },
            )
        }
    }
}

fn variance_split(centers: &[&Point], m: usize) -> (Vec<usize>, Vec<usize>) {
    let n = centers.len();
    debug_assert!(n >= 2 * m);
    let dim = centers[0].dim();
    // Dimension of maximum variance.
    let mut best_dim = 0;
    let mut best_var = f64::NEG_INFINITY;
    for d in 0..dim {
        let mean: f64 = centers.iter().map(|c| c.coord(d)).sum::<f64>() / n as f64;
        let var: f64 = centers
            .iter()
            .map(|c| {
                let x = c.coord(d) - mean;
                x * x
            })
            .sum::<f64>();
        if var > best_var {
            best_var = var;
            best_dim = d;
        }
    }
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| {
        centers[a]
            .coord(best_dim)
            .partial_cmp(&centers[b].coord(best_dim))
            .expect("finite")
            .then(a.cmp(&b))
    });
    // Prefix sums of x and x² along the split dimension for O(1) group
    // variances.
    let xs: Vec<f64> = order.iter().map(|&i| centers[i].coord(best_dim)).collect();
    let mut sum = vec![0.0f64; n + 1];
    let mut sum2 = vec![0.0f64; n + 1];
    for i in 0..n {
        sum[i + 1] = sum[i] + xs[i];
        sum2[i + 1] = sum2[i] + xs[i] * xs[i];
    }
    let group_var = |lo: usize, hi: usize| -> f64 {
        let cnt = (hi - lo) as f64;
        let s = sum[hi] - sum[lo];
        let s2 = sum2[hi] - sum2[lo];
        s2 - s * s / cnt
    };
    let mut best_cut = m;
    let mut best_cost = f64::INFINITY;
    for cut in m..=(n - m) {
        let cost = group_var(0, cut) + group_var(cut, n);
        if cost < best_cost {
            best_cost = cost;
            best_cut = cut;
        }
    }
    (order[..best_cut].to_vec(), order[best_cut..].to_vec())
}

impl<S: PageStore> sqda_core::AccessMethod for SsTree<S> {
    fn root_page(&self) -> PageId {
        self.root
    }

    fn num_disks(&self) -> u32 {
        self.store.num_disks()
    }

    fn read_index_node(
        &self,
        page: PageId,
    ) -> std::result::Result<sqda_core::IndexNode, sqda_core::QueryError> {
        Ok(self.read_node(page)?.as_ref().into())
    }

    fn placement(
        &self,
        page: PageId,
    ) -> std::result::Result<sqda_storage::Placement, sqda_core::QueryError> {
        Ok(self
            .store
            .placement(page)
            .map_err(sqda_core::QueryError::from)?)
    }
}

/// The one place an SS-tree node becomes the algorithms' view of it (the
/// R\*-tree's counterpart lives in `sqda_core::access`). Borrowing form:
/// the source node usually lives in the shared cache, so conversion packs
/// the entries into the flat block layout the batch distance kernels run
/// over, without consuming the cached value.
impl From<&SsNode> for sqda_core::IndexNode {
    fn from(node: &SsNode) -> Self {
        match node {
            SsNode::Leaf(entries) => {
                let dim = entries.first().map_or(0, |e| e.point.dim());
                let mut coords = Vec::with_capacity(dim * entries.len());
                let mut ids = Vec::with_capacity(entries.len());
                for e in entries {
                    coords.extend_from_slice(e.point.coords());
                    ids.push(e.object);
                }
                sqda_core::IndexNode::Leaf(sqda_core::LeafBlock::new(
                    dim,
                    coords.into_boxed_slice(),
                    ids.into_boxed_slice(),
                ))
            }
            SsNode::Internal { entries, .. } => {
                let dim = entries.first().map_or(0, |e| e.center.dim());
                let mut centers = Vec::with_capacity(dim * entries.len());
                let mut radii = Vec::with_capacity(entries.len());
                let mut children = Vec::with_capacity(entries.len());
                let mut counts = Vec::with_capacity(entries.len());
                for e in entries {
                    centers.extend_from_slice(e.center.coords());
                    radii.push(e.radius);
                    children.push(e.child.as_raw());
                    counts.push(e.count);
                }
                sqda_core::IndexNode::Internal(sqda_core::InternalBlock::from_spheres(
                    dim,
                    centers.into_boxed_slice(),
                    radii.into_boxed_slice(),
                    children.into_boxed_slice(),
                    counts.into_boxed_slice(),
                ))
            }
        }
    }
}

impl From<SsNode> for sqda_core::IndexNode {
    fn from(node: SsNode) -> Self {
        (&node).into()
    }
}

impl<S: PageStore> std::fmt::Debug for SsTree<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SsTree")
            .field("dim", &self.config.dim)
            .field("height", &self.height)
            .field("num_objects", &self.num_objects)
            .finish()
    }
}
