//! Binary on-page SS-tree node format (mirrors the R\*-tree codec with a
//! different magic and entry layout).
//!
//! ```text
//! offset  size  field
//! 0       4     magic "SSTN"
//! 4       1     version (1)
//! 5       1     node type (0 = leaf, 1 = internal)
//! 6       2     dimensionality
//! 8       4     level
//! 12      4     number of entries
//! 16      ...   entries
//! ```
//!
//! Internal entry: `dim` f64 center + f64 radius + u64 child + u64 count.
//! Leaf entry: `dim` f64 coordinates + u64 object id.

use crate::node::{SsLeafEntry, SsNode, SsSphereEntry};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use sqda_geom::Point;
use sqda_storage::{PageId, StorageError};

/// Fixed header size.
pub const HEADER_SIZE: usize = 16;

const MAGIC: &[u8; 4] = b"SSTN";
const VERSION: u8 = 1;

/// Bytes per internal entry.
pub const fn internal_entry_size(dim: usize) -> usize {
    dim * 8 + 8 + 8 + 8
}

/// Bytes per leaf entry.
pub const fn leaf_entry_size(dim: usize) -> usize {
    dim * 8 + 8
}

/// Serializes a node.
pub fn encode_node(node: &SsNode, dim: usize) -> Bytes {
    let (ty, level, n) = match node {
        SsNode::Leaf(e) => (0u8, 0u32, e.len()),
        SsNode::Internal { level, entries } => (1u8, *level, entries.len()),
    };
    let body = match node {
        SsNode::Leaf(_) => n * leaf_entry_size(dim),
        SsNode::Internal { .. } => n * internal_entry_size(dim),
    };
    let mut buf = BytesMut::with_capacity(HEADER_SIZE + body);
    buf.put_slice(MAGIC);
    buf.put_u8(VERSION);
    buf.put_u8(ty);
    buf.put_u16_le(dim as u16);
    buf.put_u32_le(level);
    buf.put_u32_le(n as u32);
    match node {
        SsNode::Leaf(entries) => {
            for e in entries {
                assert_eq!(e.point.dim(), dim, "leaf entry dimension mismatch");
                for c in e.point.coords() {
                    buf.put_f64_le(*c);
                }
                buf.put_u64_le(e.object);
            }
        }
        SsNode::Internal { entries, .. } => {
            for e in entries {
                assert_eq!(e.center.dim(), dim, "entry dimension mismatch");
                for c in e.center.coords() {
                    buf.put_f64_le(*c);
                }
                buf.put_f64_le(e.radius);
                buf.put_u64_le(e.child.as_raw());
                buf.put_u64_le(e.count);
            }
        }
    }
    buf.freeze()
}

fn corrupt(page: PageId, detail: impl Into<String>) -> StorageError {
    StorageError::CorruptPage {
        page,
        detail: detail.into(),
    }
}

/// Deserializes a node.
pub fn decode_node(mut data: Bytes, dim: usize, page: PageId) -> Result<SsNode, StorageError> {
    if data.len() < HEADER_SIZE {
        return Err(corrupt(page, "short page"));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(corrupt(page, "bad magic"));
    }
    if data.get_u8() != VERSION {
        return Err(corrupt(page, "unsupported version"));
    }
    let ty = data.get_u8();
    let file_dim = data.get_u16_le() as usize;
    if file_dim != dim {
        return Err(corrupt(page, "dimension mismatch"));
    }
    let level = data.get_u32_le();
    let n = data.get_u32_le() as usize;
    match ty {
        0 => {
            if data.remaining() < n * leaf_entry_size(dim) {
                return Err(corrupt(page, "truncated leaf entries"));
            }
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let coords: Vec<f64> = (0..dim).map(|_| data.get_f64_le()).collect();
                let object = data.get_u64_le();
                entries.push(SsLeafEntry {
                    point: Point::new(coords),
                    object,
                });
            }
            Ok(SsNode::Leaf(entries))
        }
        1 => {
            if level == 0 {
                return Err(corrupt(page, "internal node with level 0"));
            }
            if data.remaining() < n * internal_entry_size(dim) {
                return Err(corrupt(page, "truncated internal entries"));
            }
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let coords: Vec<f64> = (0..dim).map(|_| data.get_f64_le()).collect();
                let radius = data.get_f64_le();
                let child = PageId::from_raw(data.get_u64_le());
                let count = data.get_u64_le();
                if !radius.is_finite() || radius < 0.0 {
                    return Err(corrupt(page, format!("bad radius {radius}")));
                }
                entries.push(SsSphereEntry {
                    center: Point::new(coords),
                    radius,
                    child,
                    count,
                });
            }
            Ok(SsNode::Internal { level, entries })
        }
        other => Err(corrupt(page, format!("unknown node type {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page() -> PageId {
        PageId::from_raw(3)
    }

    #[test]
    fn roundtrip_both_kinds() {
        for dim in [1usize, 2, 5, 10] {
            let leaf = SsNode::Leaf(
                (0..9)
                    .map(|i| SsLeafEntry {
                        point: Point::new((0..dim).map(|d| (i + d) as f64).collect()),
                        object: i as u64,
                    })
                    .collect(),
            );
            assert_eq!(
                decode_node(encode_node(&leaf, dim), dim, page()).unwrap(),
                leaf
            );
            let internal = SsNode::Internal {
                level: 2,
                entries: (0..5)
                    .map(|i| SsSphereEntry {
                        center: Point::new((0..dim).map(|d| (i * d) as f64).collect()),
                        radius: i as f64 * 0.5,
                        child: PageId::from_raw(10 + i as u64),
                        count: 3 * (i as u64 + 1),
                    })
                    .collect(),
            };
            assert_eq!(
                decode_node(encode_node(&internal, dim), dim, page()).unwrap(),
                internal
            );
        }
    }

    #[test]
    fn rejects_corruption() {
        let node = SsNode::Leaf(vec![SsLeafEntry {
            point: Point::new(vec![1.0, 2.0]),
            object: 1,
        }]);
        let good = encode_node(&node, 2);
        // Magic.
        let mut bad = good.to_vec();
        bad[0] = b'X';
        assert!(decode_node(Bytes::from(bad), 2, page()).is_err());
        // Wrong dim.
        assert!(decode_node(good.clone(), 3, page()).is_err());
        // Truncation.
        assert!(decode_node(good.slice(0..10), 2, page()).is_err());
        // Negative radius.
        let internal = SsNode::Internal {
            level: 1,
            entries: vec![SsSphereEntry {
                center: Point::new(vec![0.0, 0.0]),
                radius: 1.0,
                child: PageId::from_raw(1),
                count: 1,
            }],
        };
        let mut bytes = encode_node(&internal, 2).to_vec();
        // Radius field sits after 2 f64 coords: offset 16 + 16.
        bytes[32..40].copy_from_slice(&(-1.0f64).to_le_bytes());
        assert!(decode_node(Bytes::from(bytes), 2, page()).is_err());
    }
}
