//! SS-tree structural invariants.

use crate::node::SsNode;
use crate::tree::{Result, SsTree};
use sqda_storage::{PageId, PageStore};

/// A violated SS-tree invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum SsValidationError {
    /// A parent entry's sphere fails to cover the child subtree.
    SphereTooSmall {
        /// Parent node.
        parent: PageId,
        /// Child node.
        child: PageId,
        /// Required radius (from the child contents).
        required: f64,
        /// Recorded radius.
        recorded: f64,
    },
    /// A parent entry's count disagrees with the child subtree.
    WrongCount {
        /// Parent node.
        parent: PageId,
        /// Child node.
        child: PageId,
        /// Recorded count.
        recorded: u64,
        /// Actual count.
        actual: u64,
    },
    /// Child level is not parent level − 1.
    BrokenLevel {
        /// Parent node.
        parent: PageId,
    },
    /// Node fill outside bounds.
    BadFill {
        /// The offending node.
        page: PageId,
        /// Entries present.
        len: usize,
    },
    /// Recorded totals disagree with the structure.
    WrongTotal {
        /// Recorded object count.
        recorded: u64,
        /// Actual leaf entries.
        actual: u64,
    },
}

impl std::fmt::Display for SsValidationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SsValidationError::SphereTooSmall {
                parent,
                child,
                required,
                recorded,
            } => write!(
                f,
                "sphere in {parent} over {child} too small: {recorded} < required {required}"
            ),
            SsValidationError::WrongCount {
                parent,
                child,
                recorded,
                actual,
            } => write!(f, "count in {parent} over {child}: {recorded} != {actual}"),
            SsValidationError::BrokenLevel { parent } => {
                write!(f, "level mismatch under {parent}")
            }
            SsValidationError::BadFill { page, len } => {
                write!(f, "node {page} has {len} entries (outside bounds)")
            }
            SsValidationError::WrongTotal { recorded, actual } => {
                write!(f, "tree records {recorded} objects, found {actual}")
            }
        }
    }
}

/// Checks all invariants; returns the first violation.
pub fn validate<S: PageStore>(
    tree: &SsTree<S>,
) -> Result<std::result::Result<(), SsValidationError>> {
    let mut total = 0u64;
    let root_page = tree.root_page();
    let root = tree.read_node(root_page)?;
    if let Err(e) = check(tree, root_page, &root, true, &mut total)? {
        return Ok(Err(e));
    }
    if total != tree.num_objects() {
        return Ok(Err(SsValidationError::WrongTotal {
            recorded: tree.num_objects(),
            actual: total,
        }));
    }
    Ok(Ok(()))
}

fn check<S: PageStore>(
    tree: &SsTree<S>,
    page: PageId,
    node: &SsNode,
    is_root: bool,
    total: &mut u64,
) -> Result<std::result::Result<u64, SsValidationError>> {
    let (min, max) = if node.is_leaf() {
        (
            tree.config().min_leaf_entries(),
            tree.config().max_leaf_entries,
        )
    } else {
        (
            tree.config().min_internal_entries(),
            tree.config().max_internal_entries,
        )
    };
    if (!is_root && (node.len() < min || node.len() > max)) || (is_root && node.len() > max) {
        return Ok(Err(SsValidationError::BadFill {
            page,
            len: node.len(),
        }));
    }
    match node {
        SsNode::Leaf(entries) => {
            *total += entries.len() as u64;
            Ok(Ok(entries.len() as u64))
        }
        SsNode::Internal { level, entries } => {
            let mut subtree = 0u64;
            for e in entries {
                let child = tree.read_node(e.child)?;
                if child.level() + 1 != *level {
                    return Ok(Err(SsValidationError::BrokenLevel { parent: page }));
                }
                // Coverage: every point/sphere of the child must lie within
                // the recorded sphere (with numeric slack).
                let required = match child.as_ref() {
                    SsNode::Leaf(points) => points
                        .iter()
                        .map(|le| e.center.dist(&le.point))
                        .fold(0.0f64, f64::max),
                    SsNode::Internal { entries, .. } => entries
                        .iter()
                        .map(|ce| e.center.dist(&ce.center) + ce.radius)
                        .fold(0.0f64, f64::max),
                };
                if e.radius + 1e-9 * (1.0 + required) < required {
                    return Ok(Err(SsValidationError::SphereTooSmall {
                        parent: page,
                        child: e.child,
                        required,
                        recorded: e.radius,
                    }));
                }
                let child_count = match check(tree, e.child, &child, false, total)? {
                    Ok(c) => c,
                    Err(err) => return Ok(Err(err)),
                };
                if child_count != e.count {
                    return Ok(Err(SsValidationError::WrongCount {
                        parent: page,
                        child: e.child,
                        recorded: e.count,
                        actual: child_count,
                    }));
                }
                subtree += child_count;
            }
            Ok(Ok(subtree))
        }
    }
}
