//! SS-tree nodes: sphere-bounded directory entries and point leaves.

use sqda_geom::Point;
use sqda_storage::PageId;

/// A directory entry: a bounding sphere over a child subtree.
#[derive(Debug, Clone, PartialEq)]
pub struct SsSphereEntry {
    /// Sphere center — the weighted centroid of the subtree's points.
    pub center: Point,
    /// Sphere radius: every point of the subtree lies within it.
    pub radius: f64,
    /// The child page.
    pub child: PageId,
    /// Data objects in the child subtree (the count augmentation).
    pub count: u64,
}

/// A leaf entry: one data point.
#[derive(Debug, Clone, PartialEq)]
pub struct SsLeafEntry {
    /// The indexed point.
    pub point: Point,
    /// Raw object id.
    pub object: u64,
}

/// One SS-tree node (one page).
#[derive(Debug, Clone, PartialEq)]
pub enum SsNode {
    /// Level 0.
    Leaf(Vec<SsLeafEntry>),
    /// Level ≥ 1.
    Internal {
        /// Height above the leaves.
        level: u32,
        /// Child entries.
        entries: Vec<SsSphereEntry>,
    },
}

impl SsNode {
    /// Node level (0 = leaf).
    pub fn level(&self) -> u32 {
        match self {
            SsNode::Leaf(_) => 0,
            SsNode::Internal { level, .. } => *level,
        }
    }

    /// `true` for leaves.
    pub fn is_leaf(&self) -> bool {
        matches!(self, SsNode::Leaf(_))
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        match self {
            SsNode::Leaf(e) => e.len(),
            SsNode::Internal { entries, .. } => entries.len(),
        }
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total objects under the node.
    pub fn object_count(&self) -> u64 {
        match self {
            SsNode::Leaf(e) => e.len() as u64,
            SsNode::Internal { entries, .. } => entries.iter().map(|e| e.count).sum(),
        }
    }

    /// The node's bounding sphere: count-weighted centroid plus the
    /// smallest radius covering every child sphere / point. `None` for an
    /// empty node.
    pub fn bounding_sphere(&self) -> Option<(Point, f64)> {
        if self.is_empty() {
            return None;
        }
        match self {
            SsNode::Leaf(entries) => {
                let dim = entries[0].point.dim();
                let mut center = vec![0.0f64; dim];
                for e in entries {
                    for (c, v) in center.iter_mut().zip(e.point.coords()) {
                        *c += v;
                    }
                }
                for c in &mut center {
                    *c /= entries.len() as f64;
                }
                let center = Point::new(center);
                let radius = entries
                    .iter()
                    .map(|e| center.dist(&e.point))
                    .fold(0.0f64, f64::max);
                Some((center, radius))
            }
            SsNode::Internal { entries, .. } => {
                let dim = entries[0].center.dim();
                let total: u64 = entries.iter().map(|e| e.count).sum();
                let mut center = vec![0.0f64; dim];
                for e in entries {
                    let w = e.count as f64 / total as f64;
                    for (c, v) in center.iter_mut().zip(e.center.coords()) {
                        *c += w * v;
                    }
                }
                let center = Point::new(center);
                let radius = entries
                    .iter()
                    .map(|e| center.dist(&e.center) + e.radius)
                    .fold(0.0f64, f64::max);
                Some((center, radius))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_bounding_sphere() {
        let node = SsNode::Leaf(vec![
            SsLeafEntry {
                point: Point::new(vec![0.0, 0.0]),
                object: 0,
            },
            SsLeafEntry {
                point: Point::new(vec![2.0, 0.0]),
                object: 1,
            },
        ]);
        let (c, r) = node.bounding_sphere().unwrap();
        assert_eq!(c, Point::new(vec![1.0, 0.0]));
        assert!((r - 1.0).abs() < 1e-12);
        assert_eq!(node.object_count(), 2);
        assert!(node.is_leaf());
    }

    #[test]
    fn internal_weighted_centroid() {
        let node = SsNode::Internal {
            level: 1,
            entries: vec![
                SsSphereEntry {
                    center: Point::new(vec![0.0]),
                    radius: 1.0,
                    child: PageId::from_raw(1),
                    count: 3,
                },
                SsSphereEntry {
                    center: Point::new(vec![4.0]),
                    radius: 0.5,
                    child: PageId::from_raw(2),
                    count: 1,
                },
            ],
        };
        let (c, r) = node.bounding_sphere().unwrap();
        // Weighted center: (3*0 + 1*4)/4 = 1.
        assert_eq!(c, Point::new(vec![1.0]));
        // Radius covers both spheres: max(1+1, 3+0.5) = 3.5.
        assert!((r - 3.5).abs() < 1e-12);
        assert_eq!(node.object_count(), 4);
        assert_eq!(node.level(), 1);
    }

    #[test]
    fn empty_node() {
        let node = SsNode::Leaf(vec![]);
        assert!(node.bounding_sphere().is_none());
        assert!(node.is_empty());
    }
}
