//! A declustered SS-tree over a disk-array page store.
//!
//! The paper's concluding section lists "the application of the algorithm
//! on other access methods for similarity search, like SS-tree, SR-tree,
//! TV-tree and X-tree" as future work. This crate delivers the SS-tree
//! (White & Jain, ICDE'96): a height-balanced tree whose directory
//! entries bound their subtrees with **spheres** (centroid + radius)
//! instead of rectangles. Spheres have shorter diameters in high
//! dimensions and store only `d + 1` scalars per region, doubling
//! directory fan-out.
//!
//! Structure mirrors `sqda-rstar`: one node per page, per-entry subtree
//! object counts (the modification CRSS relies on), pluggable
//! declustering across the array's disks, and a compact binary codec.
//! The tree implements [`sqda_core::AccessMethod`], so **BBSS, FPSS,
//! CRSS and WOPTSS run over it unchanged** — with the caveat the
//! geometry dictates: a bounding sphere offers no MINMAXDIST-style
//! per-face guarantee, so the pessimistic metric degrades to `D_max`
//! (see `sqda_geom::Region::min_max_dist_sq`).
//!
//! # Example
//!
//! ```
//! use sqda_sstree::{SsConfig, SsTree};
//! use sqda_core::{AlgorithmKind, exec::run_query};
//! use sqda_storage::ArrayStore;
//! use sqda_geom::Point;
//! use std::sync::Arc;
//!
//! let store = Arc::new(ArrayStore::new(4, 1449, 7));
//! let mut tree = SsTree::create(store, SsConfig::new(2)).unwrap();
//! for i in 0..500u64 {
//!     tree.insert(Point::new(vec![(i % 23) as f64, (i % 17) as f64]), i).unwrap();
//! }
//! let mut crss = AlgorithmKind::Crss.build(&tree, Point::new(vec![4.0, 4.0]), 5).unwrap();
//! let run = run_query(&tree, crss.as_mut()).unwrap();
//! assert_eq!(run.results.len(), 5);
//! ```

mod codec;
mod node;
mod tree;
mod validate;

pub use node::{SsLeafEntry, SsNode, SsSphereEntry};
pub use tree::{SsConfig, SsError, SsTree};
pub use validate::SsValidationError;
