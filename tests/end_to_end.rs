//! End-to-end integration tests spanning every crate: dataset generator →
//! declustered R*-tree on a simulated array → all four algorithms → both
//! executors.

use sqda::core::exec::QueryRun;
use sqda::datasets::{california_like, gaussian, long_beach_like, uniform};
use sqda::prelude::*;
use std::sync::Arc;

fn index(dataset: &Dataset, disks: u32) -> RStarTree<ArrayStore> {
    let store = Arc::new(ArrayStore::with_page_size(disks, 1449, 1024, 5));
    let mut tree = RStarTree::create(
        store,
        RStarConfig::with_page_size(dataset.dim, 1024),
        Box::new(ProximityIndex),
    )
    .unwrap();
    for (i, p) in dataset.points.iter().enumerate() {
        tree.insert(p.clone(), i as u64).unwrap();
    }
    tree
}

fn run(tree: &RStarTree<ArrayStore>, q: &Point, k: usize, kind: AlgorithmKind) -> QueryRun {
    let mut algo = kind.build(tree, q.clone(), k).unwrap();
    run_query(tree, algo.as_mut()).unwrap()
}

#[test]
fn every_generator_feeds_every_algorithm() {
    let datasets = [
        uniform(3000, 3, 1),
        gaussian(3000, 3, 2),
        california_like(3000, 3),
        long_beach_like(3000, 4),
    ];
    for dataset in &datasets {
        let tree = index(dataset, 6);
        tree.validate().unwrap().unwrap();
        let queries = dataset.sample_queries(5, 9);
        for q in &queries {
            let reference: Vec<u64> = run(&tree, q, 12, AlgorithmKind::Woptss)
                .results
                .iter()
                .map(|n| n.object.0)
                .collect();
            for kind in AlgorithmKind::REAL {
                let got: Vec<u64> = run(&tree, q, 12, kind)
                    .results
                    .iter()
                    .map(|n| n.object.0)
                    .collect();
                assert_eq!(got, reference, "{kind} on {}", dataset.name);
            }
        }
    }
}

#[test]
fn sequential_knn_agrees_with_parallel_algorithms() {
    let dataset = gaussian(4000, 4, 5);
    let tree = index(&dataset, 8);
    for q in dataset.sample_queries(8, 6) {
        let seq = tree.knn(&q, 15).unwrap();
        let par = run(&tree, &q, 15, AlgorithmKind::Crss).results;
        assert_eq!(seq.len(), par.len());
        for (s, p) in seq.iter().zip(par.iter()) {
            assert!((s.dist_sq - p.dist_sq).abs() < 1e-12);
        }
    }
}

#[test]
fn full_pipeline_with_simulation() {
    let dataset = california_like(5000, 7);
    let tree = index(&dataset, 5);
    let sim = Simulation::new(&tree, SystemParams::with_disks(5)).unwrap();
    let workload = Workload::poisson(dataset.sample_queries(15, 8), 10, 5.0, 9);
    let mut means = Vec::new();
    for kind in AlgorithmKind::ALL {
        let report = sim.run(kind, &workload, 10).unwrap();
        assert_eq!(report.completed, 15, "{kind}");
        means.push((kind, report.mean_response_s));
    }
    // WOPTSS is the floor.
    let wopt = means
        .iter()
        .find(|(k, _)| *k == AlgorithmKind::Woptss)
        .unwrap()
        .1;
    for (kind, m) in &means {
        assert!(
            *m >= wopt * 0.999,
            "{kind} {m} under the WOPTSS floor {wopt}"
        );
    }
}

#[test]
fn mutations_between_queries_keep_answers_exact() {
    // The paper stresses dynamic environments: insertions/deletions mixed
    // with queries, no global reorganization.
    let dataset = uniform(2000, 2, 10);
    let mut tree = index(&dataset, 4);
    let q = Point::new(vec![0.5, 0.5]);

    let before = run(&tree, &q, 10, AlgorithmKind::Crss).results;

    // Delete the current nearest neighbour — answers must shift by one.
    let nearest = before[0].clone();
    assert!(tree.delete(&nearest.point, nearest.object.0).unwrap());
    let after = run(&tree, &q, 10, AlgorithmKind::Crss).results;
    assert!(after.iter().all(|n| n.object != nearest.object));
    assert_eq!(&after[..9], &before[1..10]);

    // Insert a new closest point — it must come back first.
    tree.insert(Point::new(vec![0.5, 0.5]), 999_999).unwrap();
    let now = run(&tree, &q, 10, AlgorithmKind::Crss).results;
    assert_eq!(now[0].object.0, 999_999);
    tree.validate().unwrap().unwrap();
}

#[test]
fn csv_roundtrip_through_index() {
    let dataset = gaussian(500, 2, 11);
    let dir = std::env::temp_dir().join("sqda-e2e");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("points.csv");
    dataset.write_csv(&path).unwrap();
    let back = Dataset::read_csv("reload", &path).unwrap();
    assert_eq!(back.len(), 500);
    let tree = index(&back, 4);
    assert_eq!(tree.num_objects(), 500);
    std::fs::remove_file(&path).ok();
}
